"""``repro.server`` — the long-lived, multi-client verification daemon.

Everything else in the repo is batch-oriented: one :class:`~repro.api.Session`,
one module, then exit.  This package turns the same machinery into a
resident service (the "proof generation as a service" shape KVerus
describes): an asyncio front door speaking newline-delimited JSON
(:mod:`.protocol`), a fair bounded request queue (:mod:`.queue`),
per-client step-budget quotas (:mod:`.quota`), and — the core win — a
registry of pre-warmed incremental solver contexts (:mod:`.warm`) so a
client re-submitting an edited module pays only for the functions whose
dependency fingerprints changed.

Public surface::

    from repro.server import ServerConfig, VerifyServer, ServerClient, SolverPool
"""

from .config import ServerConfig
from .warm import SolverPool
from .daemon import VerifyServer
from .client import ServerClient

__all__ = ["ServerConfig", "SolverPool", "VerifyServer", "ServerClient"]
