"""A small synchronous client for the verification daemon.

Speaks the :mod:`repro.server.protocol` wire format over a plain TCP
socket.  One request is in flight at a time per client instance (the
daemon itself handles pipelining; this class trades that for a simple
blocking API) — open several instances for concurrent traffic, as the
determinism tests and ``scripts/client.py`` do.

    from repro.server import ServerClient

    with ServerClient(port=9178, client="alice") as c:
        reply = c.verify(builder="repro.systems.nr.model:build_nr_core_module")
        print(reply["status"], reply["server"]["path"])
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Optional

from . import protocol


class ServerUnavailable(ConnectionError):
    """Could not reach (or lost) the daemon."""


class ServerClient:
    """Blocking NDJSON client; context-manager closes the socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 client: str = protocol.DEFAULT_CLIENT,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.client = client
        self.timeout = timeout
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._buf = b""

    # ---------------------------------------------------------- transport

    def connect(self) -> "ServerClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as exc:
                raise ServerUnavailable(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buf = b""

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _read_line(self) -> bytes:
        while b"\n" not in self._buf:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise ServerUnavailable(f"read failed: {exc}") from exc
            if not chunk:
                raise ServerUnavailable("daemon closed the connection")
            self._buf += chunk
        line, _, self._buf = self._buf.partition(b"\n")
        return line

    def request(self, verb: str, module: Optional[dict] = None,
                config: Optional[dict] = None,
                priority: int = 0) -> dict:
        """Send one request and block for its (id-matched) reply."""
        self.connect()
        req_id = f"{self.client}-{next(self._ids)}"
        payload = {"id": req_id, "verb": verb, "client": self.client,
                   "priority": priority}
        if module is not None:
            payload["module"] = module
        if config:
            payload["config"] = config
        try:
            self._sock.sendall(protocol.encode(payload))
        except OSError as exc:
            raise ServerUnavailable(f"send failed: {exc}") from exc
        while True:
            reply = json.loads(self._read_line())
            # Replies are id-matched; with one request in flight the
            # first matching line is ours (error replies to malformed
            # frames carry id null and would not match).
            if reply.get("id") == req_id:
                return reply

    # -------------------------------------------------------------- verbs

    @staticmethod
    def _module_spec(builder: Optional[str], source: Optional[str]) -> dict:
        if source is not None:
            return {"source": source, "builder": builder or "build"}
        if builder is None:
            raise ValueError("need builder='pkg.mod:fn' or source=...")
        return {"builder": builder}

    def verify(self, builder: Optional[str] = None,
               source: Optional[str] = None,
               config: Optional[dict] = None, priority: int = 0) -> dict:
        return self.request(protocol.VERIFY,
                            self._module_spec(builder, source),
                            config, priority)

    def analyze(self, builder: Optional[str] = None,
                source: Optional[str] = None,
                config: Optional[dict] = None, priority: int = 0) -> dict:
        return self.request(protocol.ANALYZE,
                            self._module_spec(builder, source),
                            config, priority)

    def diagnose(self, builder: Optional[str] = None,
                 source: Optional[str] = None,
                 config: Optional[dict] = None, priority: int = 0) -> dict:
        return self.request(protocol.DIAGNOSE,
                            self._module_spec(builder, source),
                            config, priority)

    def profiles(self) -> dict:
        return self.request(protocol.PROFILES)

    def status(self) -> dict:
        return self.request(protocol.STATUS)

    def shutdown(self) -> dict:
        return self.request(protocol.SHUTDOWN)
