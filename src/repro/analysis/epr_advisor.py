"""EPR advisor: the §3.2 static gate, plus migration candidates.

``#[epr_mode]`` is a *per-module* promise: stay inside the effectively
propositional fragment and verification becomes a decision procedure
(MBQI is complete).  Two static checks fall out:

* a module that **declares** ``epr_mode`` but steps outside the
  fragment is in error — the same violations
  :func:`repro.epr.verify_epr_module` raises, but rendered through the
  standard diagnostics machinery (via ``EprViolation.to_finding``)
  instead of a bare exception string;
* a **default-mode** module whose vocabulary already fits EPR is a
  migration candidate — the delegation-map story of §3.2, where an
  existing manual proof was replaced by a fully automatic EPR model.
  The advisor reports these as info findings.
"""

from __future__ import annotations

from ..epr import check_epr_module
from . import INFO, AnalysisContext, AnalysisPass, Finding


class EprAdvisorPass(AnalysisPass):
    """Gate ``epr_mode`` modules; advise on EPR-eligible default ones."""

    id = "epr"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        mod = ctx.module
        if not mod.functions:
            return []
        violations = check_epr_module(mod)
        if mod.epr_mode:
            return [v.to_finding() for v in violations]
        if violations:
            return []  # default-mode module outside EPR: nothing to say
        return [Finding(
            self.id, INFO, mod.name,
            "module stays inside the EPR fragment; marking it "
            "epr_mode would make verification a complete decision "
            "procedure (no manual proofs needed)",
            suggestion="construct it with Module(name, epr_mode=True) "
                       "and verify via repro.epr.verify_epr_module")]
