"""Pre-SMT static analysis: the checks Verus runs *before* the solver.

Verus front-loads soundness and performance into static discipline — the
mode checker enforces spec/proof/exec separation, spec functions must be
pure and total (§3.1), conservative trigger selection avoids matching
loops, and ``#[epr_mode]`` is a per-module static gate (§3.2).  Our
reproduction discovered all of these late, as confusing SMT failures or
hangs; this package reproduces them as a pass manager over
:class:`repro.vc.ast.Module` that runs with **zero solver work**.

Five passes ship (in execution order):

* :class:`~repro.analysis.modes.ModeCheckPass` (``modes``) — spec
  functions may only call spec functions; exec code cannot read ghost
  (proof) results into exec state; proof calls cannot mutate exec
  variables; asserts/invariants/requires/ensures must be spec-mode
  expressions.
* :class:`~repro.analysis.termination.TerminationPass` (``termination``)
  — SCCs of the call graph; a recursive spec/proof function without a
  ``decreases`` clause is an error (totality of pure spec functions is a
  soundness assumption of the §3.1 encoding).
* :class:`~repro.analysis.triggers.MatchingLoopPass` (``matching-loop``)
  — runs :func:`repro.smt.quant.select_triggers` over every quantified
  axiom/ensures, builds the trigger → instantiation-term growth graph,
  and errors on cycles (and warns on silent trigger-selection
  fallbacks).
* :class:`~repro.analysis.epr_advisor.EprAdvisorPass` (``epr``) — runs
  the §3.2 EPR well-formedness check: errors for ``epr_mode`` modules
  that step outside the fragment, and an advisory note for default-mode
  modules that *would* be accepted (delegation-map-style migration
  candidates).
* :class:`~repro.analysis.pruning.PruningAdvisorPass` (``pruning``) —
  reachability over spec-function dependencies per obligation; spec
  context no obligation ever pulls in is flagged (pruning always drops
  it).

Findings reuse the :mod:`repro.diag` render machinery for text and JSON
output.  The scheduler gate (``VerifyConfig.analyze`` /
``REPRO_ANALYZE`` / ``Scheduler(analyze=True)``) runs the analyzer
before planning and rejects the module on any error-severity finding —
before a single SMT query is issued.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..vc import ast as A

# Finding severities.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


class Finding:
    """One structured result of a static-analysis pass.

    Plain data throughout (the ``span`` is a :class:`repro.vc.ast.Span`
    or ``None``), so findings serialize through
    :func:`repro.diag.render.finding_to_json` without special cases.
    """

    __slots__ = ("pass_id", "severity", "where", "message", "span",
                 "suggestion")

    def __init__(self, pass_id: str, severity: str, where: str,
                 message: str, span=None, suggestion: str = ""):
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}")
        self.pass_id = pass_id
        self.severity = severity
        self.where = where          # "module.function" or the module name
        self.message = message
        self.span = span            # Optional[repro.vc.ast.Span]
        self.suggestion = suggestion

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> dict:
        from ..diag.render import finding_to_json
        return finding_to_json(self)

    def __repr__(self) -> str:
        return (f"<Finding {self.severity} [{self.pass_id}] "
                f"{self.where}: {self.message!r}>")


class AnalysisReport:
    """All findings of one analyzer run over one module."""

    def __init__(self, module_name: str):
        self.module = module_name
        self.findings: list[Finding] = []
        self.passes: list[str] = []     # pass ids, in execution order
        self.seconds: float = 0.0

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def by_pass(self, pass_id: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_id == pass_id]

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(f.severity == ERROR for f in self.findings)

    @property
    def ok(self) -> bool:
        return not self.has_errors

    def sorted_findings(self) -> list[Finding]:
        """Findings ordered by severity, then pass, then location."""
        return sorted(self.findings,
                      key=lambda f: (_SEVERITY_RANK[f.severity], f.pass_id,
                                     f.where, f.message))

    def report(self) -> str:
        """Human-readable rendering (repro.diag.render does the work)."""
        from ..diag.render import render_findings
        head = (f"analysis of {self.module}: "
                f"{len(self.errors())} error(s), "
                f"{len(self.warnings())} warning(s), "
                f"{len(self.findings)} finding(s) "
                f"from {len(self.passes)} pass(es)")
        body = render_findings(self.sorted_findings())
        return head + ("\n" + body if body else "")

    def to_json(self) -> dict:
        from ..diag.render import analysis_to_json
        return analysis_to_json(self)

    def __repr__(self) -> str:
        return (f"<AnalysisReport {self.module}: "
                f"{len(self.errors())} errors / {len(self.findings)} findings>")


# ---------------------------------------------------------------------------
# Shared AST helpers (the passes all walk the same structures)
# ---------------------------------------------------------------------------

def walk_stmts(body):
    """Iterate all statements of a function body, nested blocks included."""
    if body is None or isinstance(body, A.Expr):
        return
    stack = list(body)[::-1]
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, A.SIf):
            stack.extend(list(stmt.then)[::-1] + list(stmt.els)[::-1])
        elif isinstance(stmt, A.SWhile):
            stack.extend(list(stmt.body)[::-1])


def walk_expr(e: A.Expr):
    """Iterate all sub-expressions of an AST expression (including e)."""
    stack = [e]
    while stack:
        cur = stack.pop()
        yield cur
        for attr in ("lhs", "rhs", "operand", "cond", "then", "els", "base",
                     "seq", "idx", "value", "n", "m", "key", "body"):
            child = getattr(cur, attr, None)
            if isinstance(child, A.Expr):
                stack.append(child)
        for attr in ("args", "items"):
            children = getattr(cur, attr, None)
            if children:
                stack.extend(c for c in children if isinstance(c, A.Expr))
        for attr in ("fields", "updates"):
            mapping = getattr(cur, attr, None)
            if isinstance(mapping, dict):
                stack.extend(v for v in mapping.values()
                             if isinstance(v, A.Expr))


def spec_exprs_of(fn: A.Function):
    """``(expr, what)`` pairs for every spec-mode position of a function:
    requires/ensures/decreases plus assert/assume/invariant/loop-decreases
    expressions inside the body."""
    for what, exprs in (("requires", fn.requires), ("ensures", fn.ensures)):
        for e in exprs:
            yield e, what
    if fn.decreases is not None:
        yield fn.decreases, "decreases"
    for stmt in walk_stmts(fn.body):
        if isinstance(stmt, A.SAssert):
            yield stmt.expr, "assert"
            for p in stmt.by_premises:
                yield p, "assert premise"
        elif isinstance(stmt, A.SAssume):
            yield stmt.expr, "assume"
        elif isinstance(stmt, A.SWhile):
            for inv in stmt.invariants:
                yield inv, "invariant"
            if stmt.decreases is not None:
                yield stmt.decreases, "loop decreases"


def called_names(fn: A.Function) -> set[str]:
    """Names of every function referenced from ``fn``'s body (spec-mode
    ``Call`` expressions and exec/proof ``SCall`` statements alike)."""
    names: set[str] = set()

    def scan(e: A.Expr) -> None:
        for sub in walk_expr(e):
            if isinstance(sub, A.Call):
                names.add(sub.fn_name)

    if isinstance(fn.body, A.Expr):
        scan(fn.body)
    for stmt in walk_stmts(fn.body):
        if isinstance(stmt, A.SCall):
            names.add(stmt.fn_name)
        for attr in ("expr", "cond", "decreases"):
            e = getattr(stmt, attr, None)
            if isinstance(e, A.Expr):
                scan(e)
        for attr in ("invariants", "args", "by_premises"):
            es = getattr(stmt, attr, None)
            for e in es or ():
                if isinstance(e, A.Expr):
                    scan(e)
    return names


class AnalysisContext:
    """Shared state handed to every pass: the module, the effective
    :class:`~repro.vc.wp.VcConfig` (for the trigger policy), and a
    lazily built call graph over all visible functions."""

    def __init__(self, module: A.Module, vc_config=None):
        from ..vc.wp import VcConfig
        self.module = module
        self.vc_config = vc_config or VcConfig()
        self._call_graph: Optional[dict[str, set[str]]] = None

    @property
    def call_graph(self) -> dict[str, set[str]]:
        """name -> set of callee names, over ``module.all_functions()``."""
        if self._call_graph is None:
            fns = self.module.all_functions()
            self._call_graph = {
                name: {c for c in called_names(fn) if c in fns}
                for name, fn in fns.items()
            }
        return self._call_graph

    def qualify(self, fn_name: str) -> str:
        return f"{self.module.name}.{fn_name}"


class AnalysisPass:
    """Base class: one static check producing :class:`Finding`s."""

    id = "base"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        raise NotImplementedError


def default_passes() -> list[AnalysisPass]:
    """Fresh instances of the five shipped passes, in execution order."""
    from .epr_advisor import EprAdvisorPass
    from .modes import ModeCheckPass
    from .pruning import PruningAdvisorPass
    from .termination import TerminationPass
    from .triggers import MatchingLoopPass
    return [ModeCheckPass(), TerminationPass(), MatchingLoopPass(),
            EprAdvisorPass(), PruningAdvisorPass()]


def analyze_module(module: A.Module, vc_config=None,
                   passes: Optional[Sequence[AnalysisPass]] = None
                   ) -> AnalysisReport:
    """Run the static-analysis pipeline over one module.

    Pure AST/term work — no :class:`~repro.smt.solver.SmtSolver` is ever
    constructed, so a module rejected here costs zero query bytes.
    """
    t0 = time.perf_counter()
    ctx = AnalysisContext(module, vc_config)
    report = AnalysisReport(module.name)
    seen: set[tuple] = set()
    for p in (passes if passes is not None else default_passes()):
        report.passes.append(p.id)
        for f in p.run(ctx):
            # Identical findings (e.g. several quantifiers in the same
            # requires all falling back the same way) add no signal.
            key = (f.pass_id, f.severity, f.where, f.message)
            if key not in seen:
                seen.add(key)
                report.findings.append(f)
    report.seconds = time.perf_counter() - t0
    return report


__all__ = [
    "ERROR", "WARNING", "INFO",
    "Finding", "AnalysisReport", "AnalysisPass", "AnalysisContext",
    "analyze_module", "default_passes",
    "walk_stmts", "walk_expr", "spec_exprs_of", "called_names",
]
