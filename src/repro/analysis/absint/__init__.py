"""Abstract-interpretation obligation triage: the static proving tier.

A sound abstract interpreter over the verifier's own representations
that sits *between* the static-analysis gate and the obligation
scheduler.  Obligations whose goals follow from their path assumptions
under an interval × constant × congruence product are discharged as
``STATIC_PROVED`` — no SMT solver is ever constructed for them — and
the residue flows to the scheduler completely unchanged (same digests,
same cache keys, same warm-prefix grouping).

Layout:

* :mod:`.domains` — the three numeric domains and their reduced product;
* :mod:`.transfer` — term-level transfer functions over
  :mod:`repro.smt.terms` plus the per-obligation entailment check the
  scheduler trusts (assumption-terms only: see the soundness note
  there);
* :mod:`.engine` — an AST-level abstract interpreter mirroring
  :mod:`repro.vc.interp` semantics, with widening/narrowing loop
  fixpoints seeded from declared invariants; powers previews and the
  differential test harness.

Modes (``VerifyConfig.triage`` / ``REPRO_TRIAGE``):

* ``"on"`` — discharge statically-proved obligations without a solver;
* ``"off"`` — the tier never runs;
* ``"shadow"`` — run the tier *and* the solver on every obligation and
  raise :class:`TriageDisagreement` if the tier claimed an obligation
  the solver refuted.  The mechanical soundness check.
"""

from __future__ import annotations

from typing import Optional

from .domains import (BOT_VAL, CONG_BOT, CONG_TOP, CONST_BOT, CONST_TOP,
                      EMPTY_INTERVAL, FALSE_VAL, TOP_INTERVAL, TOP_VAL,
                      TRUE_VAL, Congruence, Const, Interval, Val, cmp_eq,
                      cmp_le, cmp_lt, euc_div, euc_mod)
from .engine import (AbsState, AbstractInterp, FunctionReport,
                     FunctionSummary, analyze_function, module_summaries,
                     type_range)
from .transfer import MAX_PASSES, AbsEnv, build_env, entails

TRIAGE_MODES = ("on", "off", "shadow")


class TriageDisagreement(Exception):
    """Shadow mode found an obligation the tier claimed but the solver
    refuted — an abstract-interpretation soundness bug.  Fails loudly."""

    def __init__(self, fn_name: str, label: str):
        super().__init__(
            f"triage soundness violation: absint claimed STATIC_PROVED on "
            f"{fn_name}: {label!r} but the solver refuted it "
            f"(REPRO_TRIAGE=shadow)")
        self.fn_name = fn_name
        self.label = label


class Triage:
    """Per-run triage state: mode + counters.

    ``check`` is the only entry point the scheduler calls; it inspects a
    single pending obligation (already planned, already translated) and
    decides whether the assumptions entail the goal.  Imprecision is
    always safe — a ``False`` just means the solver runs as before.
    """

    __slots__ = ("mode", "checked", "claimed", "fixpoint_iters")

    def __init__(self, mode: str = "on"):
        if mode not in TRIAGE_MODES:
            raise ValueError(f"triage mode must be one of {TRIAGE_MODES}, "
                             f"got {mode!r}")
        self.mode = mode
        self.checked = 0
        self.claimed = 0
        self.fixpoint_iters = 0

    @property
    def active(self) -> bool:
        return self.mode != "off"

    def check(self, item) -> tuple[bool, int]:
        """``(claimed, fixpoint_passes)`` for one pending obligation."""
        if item.goal is None or item.direct_result is not None:
            return False, 0
        self.checked += 1
        proved, passes = entails(item.assumptions, item.goal)
        self.fixpoint_iters += passes
        if proved:
            self.claimed += 1
        return proved, passes


def triage_preview(module, vc_config=None) -> dict:
    """Plan a module (no solver work) and report what the tier would do.

    Powers ``scripts/analyze_module.py --triage`` and the daemon's
    ``analyze`` verb.  Per function: obligation count, how many the
    entailment check discharges, how many the planner resolved directly,
    plus the AST engine's loop fixpoint iterations.
    """
    from ...vc.wp import VcGen
    from ...vc import ast as A

    gen = VcGen(module, vc_config)
    triage = Triage("on")
    functions = []
    total = static = direct = errors = 0
    summaries = None
    try:
        summaries = module_summaries(module)
    except Exception:
        summaries = None
    for name, fn in module.functions.items():
        if fn.mode not in (A.EXEC, A.PROOF) or fn.body is None:
            continue
        entry: dict = {"function": name}
        try:
            plan = gen.plan_function(fn)
        except Exception as err:
            entry["error"] = f"{type(err).__name__}: {err}"
            errors += 1
            functions.append(entry)
            continue
        fn_total = len(plan.pending)
        fn_static = fn_direct = 0
        for item in plan.pending:
            if item.direct_result is not None:
                fn_direct += 1
                continue
            claimed, _ = triage.check(item)
            if claimed:
                fn_static += 1
        entry["obligations"] = fn_total
        entry["static_proved"] = fn_static
        entry["direct"] = fn_direct
        try:
            report = analyze_function(module, fn, summaries)
            entry["fixpoint_iters"] = report.loop_iters
        except Exception:
            entry["fixpoint_iters"] = None
        total += fn_total
        static += fn_static
        direct += fn_direct
        functions.append(entry)
    return {
        "module": module.name,
        "obligations": total,
        "static_proved": static,
        "direct": direct,
        "plan_errors": errors,
        "rate": (static / total) if total else 0.0,
        "functions": functions,
    }


__all__ = [
    "AbsEnv", "AbsState", "AbstractInterp", "Congruence", "Const",
    "FunctionReport", "FunctionSummary", "Interval", "MAX_PASSES",
    "Triage", "TriageDisagreement", "TRIAGE_MODES", "Val",
    "analyze_function", "build_env", "cmp_eq", "cmp_le", "cmp_lt",
    "entails", "euc_div", "euc_mod", "module_summaries", "triage_preview",
    "type_range",
]
