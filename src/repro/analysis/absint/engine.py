"""AST-level abstract interpreter over :mod:`repro.vc.ast`.

This is the *preview* half of the static tier: a classic forward
abstract interpretation of function bodies over the
interval × constant × congruence product, with widening/narrowing
fixpoints for loops seeded from declared invariants.  Its operator
semantics mirror :mod:`repro.vc.interp` literal-for-literal (Euclidean
``/`` and ``%``, short-circuit booleans), which is what the randomized
differential harness in ``tests/test_absint.py`` checks: for any
concrete environment inside the abstract one, the concrete result must
lie inside the abstract result.

The engine feeds ``triage_preview`` (analyze verb / --triage reports)
and the tests.  The scheduler's discharge decision deliberately does
*not* depend on it — obligations are triaged from their own translated
assumption terms only (see :mod:`.transfer`), so engine imprecision can
never turn into an unsound ``STATIC_PROVED``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...vc import ast as A
from ...vc import types as VT
from ..graph import scc_order
from .domains import (BOT_VAL, FALSE_VAL, TOP_VAL, TRUE_VAL, Interval, Val,
                      cmp_eq, cmp_le, cmp_lt)

#: Joins before widening kicks in, and the hard cap on loop iterations.
WIDEN_AFTER = 2
MAX_LOOP_ITERS = 20

_CMP_NEG = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
            "==": "!=", "!=": "=="}


def type_range(t: VT.VType) -> Val:
    """Sound abstraction of any value of type ``t`` (matches the range
    assumptions the encoder emits for parameters)."""
    if isinstance(t, VT.BoolType):
        return TOP_VAL
    bounds = VT.range_bounds(t)
    if bounds is None:
        return TOP_VAL
    lo, hi = bounds
    return Val(Interval(lo, hi))


class AbsState:
    """Variable name -> abstract value, with an unreachable flag."""

    __slots__ = ("env", "bottom")

    def __init__(self, env: Optional[dict] = None, bottom: bool = False):
        self.env: dict[str, Val] = env if env is not None else {}
        self.bottom = bottom

    def clone(self) -> "AbsState":
        return AbsState(dict(self.env), self.bottom)

    def get(self, name: str) -> Val:
        return self.env.get(name, TOP_VAL)

    def set(self, name: str, v: Val) -> None:
        if v.is_bottom:
            self.bottom = True
        else:
            self.env[name] = v

    def join(self, other: "AbsState") -> "AbsState":
        if self.bottom:
            return other.clone()
        if other.bottom:
            return self.clone()
        env: dict[str, Val] = {}
        for name in set(self.env) | set(other.env):
            env[name] = self.get(name).join(other.get(name))
        return AbsState(env)

    def widen(self, other: "AbsState") -> "AbsState":
        if self.bottom:
            return other.clone()
        if other.bottom:
            return self.clone()
        env = {name: self.get(name).widen(other.get(name))
               for name in set(self.env) | set(other.env)}
        return AbsState(env)

    def narrow(self, other: "AbsState") -> "AbsState":
        if self.bottom or other.bottom:
            return self.clone()
        env = {name: self.get(name).narrow(other.get(name))
               for name in set(self.env) | set(other.env)}
        return AbsState(env)

    def le(self, other: "AbsState") -> bool:
        if self.bottom:
            return True
        if other.bottom:
            return False
        return all(self.get(n).le(other.get(n))
                   for n in set(self.env) | set(other.env))


class FunctionSummary:
    """Interprocedural summary for a spec function: an over-approximation
    of its return value (ignoring preconditions — always sound)."""

    __slots__ = ("name", "ret")

    def __init__(self, name: str, ret: Val):
        self.name = name
        self.ret = ret


class AbstractInterp:
    """Forward abstract interpretation of one function body."""

    def __init__(self, module: Optional[A.Module] = None,
                 summaries: Optional[dict] = None):
        self.module = module
        self.summaries: dict[str, FunctionSummary] = summaries or {}
        self.loop_iters = 0  # fixpoint iterations across all loops

    # ------------------------------------------------------ expressions

    def eval(self, e: A.Expr, state: AbsState) -> Val:
        method = getattr(self, f"_ev_{type(e).__name__}", None)
        if method is None:
            return TOP_VAL
        return method(e, state)

    def _ev_Lit(self, e: A.Lit, state) -> Val:
        return Val.const(e.value)

    def _ev_VarE(self, e: A.VarE, state) -> Val:
        v = state.env.get(e.name)
        if v is None:
            return type_range(e.vtype)
        return v.meet(type_range(e.vtype))

    def _ev_Old(self, e: A.Old, state) -> Val:
        v = state.env.get(f"old!{e.name}")
        if v is None:
            return type_range(e.vtype)
        return v.meet(type_range(e.vtype))

    def _ev_BinOp(self, e: A.BinOp, state) -> Val:
        op = e.op
        if op in ("&&", "||", "==>", "<==>"):
            ta = self.eval(e.lhs, state).truth()
            tb = self.eval(e.rhs, state).truth()
            if op == "&&":
                if ta is False or tb is False:
                    return FALSE_VAL
                if ta is True and tb is True:
                    return TRUE_VAL
            elif op == "||":
                if ta is True or tb is True:
                    return TRUE_VAL
                if ta is False and tb is False:
                    return FALSE_VAL
            elif op == "==>":
                if ta is False or tb is True:
                    return TRUE_VAL
                if ta is True and tb is False:
                    return FALSE_VAL
            else:  # <==>
                if ta is not None and tb is not None:
                    return TRUE_VAL if ta == tb else FALSE_VAL
            return TOP_VAL
        a = self.eval(e.lhs, state)
        b = self.eval(e.rhs, state)
        if op == "+":
            return a.add(b)
        if op == "-":
            return a.sub(b)
        if op == "*":
            return a.mul(b)
        if op == "/":
            return a.div(b)
        if op == "%":
            return a.mod(b)
        if op in ("&", "|", "^", "<<", ">>"):
            return self._bitwise(op, a, b)
        if op == "<":
            return Val.bool3(cmp_lt(a, b))
        if op == "<=":
            return Val.bool3(cmp_le(a, b))
        if op == ">":
            return Val.bool3(cmp_lt(b, a))
        if op == ">=":
            return Val.bool3(cmp_le(b, a))
        if op in ("==", "=~="):
            ca, cb = a.as_const(), b.as_const()
            if isinstance(ca, bool) or isinstance(cb, bool):
                if ca is not None and cb is not None:
                    return TRUE_VAL if ca == cb else FALSE_VAL
                return TOP_VAL
            return Val.bool3(cmp_eq(a, b))
        if op == "!=":
            v = self._ev_BinOp(A.BinOp("==", e.lhs, e.rhs), state)
            t = v.truth()
            return TOP_VAL if t is None else Val.bool3(not t)
        return TOP_VAL

    @staticmethod
    def _bitwise(op: str, a: Val, b: Val) -> Val:
        """Sound bit-op abstractions for non-negative operands (the
        mimalloc bit-tricks shapes); anything signed goes to top."""
        ca, cb = a.as_const(), b.as_const()
        if isinstance(ca, int) and isinstance(cb, int) and not (
                isinstance(ca, bool) or isinstance(cb, bool)):
            if op == "&":
                return Val.const(ca & cb)
            if op == "|":
                return Val.const(ca | cb)
            if op == "^":
                return Val.const(ca ^ cb)
            if op == "<<" and cb >= 0:
                return Val.const(ca << cb)
            if op == ">>" and cb >= 0:
                return Val.const(ca >> cb)
            return TOP_VAL
        alo, ahi = a.itv.lo, a.itv.hi
        blo, bhi = b.itv.lo, b.itv.hi
        nonneg = (alo is not None and alo >= 0
                  and blo is not None and blo >= 0)
        if not nonneg:
            return TOP_VAL
        if op == "&":
            # a & b <= min(a, b) for non-negative ints.
            if ahi is None and bhi is None:
                return Val(Interval(0, None))
            hi = min(h for h in (ahi, bhi) if h is not None)
            return Val(Interval(0, hi))
        if op in ("|", "^"):
            if ahi is None or bhi is None:
                return Val(Interval(0, None))
            hi = (1 << max(ahi.bit_length(), bhi.bit_length())) - 1
            return Val(Interval(0, hi))
        if op == "<<":
            if bhi is None:
                return Val(Interval(0, None))
            lo = alo << blo
            hi = None if ahi is None else ahi << bhi
            return Val(Interval(lo, hi))
        if op == ">>":
            # a >> b == a div 2^b for non-negative a, b.
            lo = 0 if bhi is None else (alo >> bhi)
            hi = None if ahi is None else ahi >> blo
            return Val(Interval(lo, hi))
        return TOP_VAL

    def _ev_UnOp(self, e: A.UnOp, state) -> Val:
        v = self.eval(e.operand, state)
        if e.op == "!":
            t = v.truth()
            return TOP_VAL if t is None else Val.bool3(not t)
        return v.neg()

    def _ev_IteE(self, e: A.IteE, state) -> Val:
        t = self.eval(e.cond, state).truth()
        if t is True:
            return self.eval(e.then, state)
        if t is False:
            return self.eval(e.els, state)
        return self.eval(e.then, state).join(self.eval(e.els, state))

    def _ev_LetE(self, e: A.LetE, state) -> Val:
        inner = state.clone()
        inner.set(e.name, self.eval(e.value, state))
        return self.eval(e.body, inner)

    def _ev_Call(self, e: A.Call, state) -> Val:
        ret = type_range(e.vtype)
        summary = self.summaries.get(e.fn_name)
        if summary is not None:
            ret = ret.meet(summary.ret)
        return ret

    def _ev_SeqLen(self, e: A.SeqLen, state) -> Val:
        if isinstance(e.seq, A.SeqLit):
            return Val.const(len(e.seq.items))
        return Val(Interval(0, None))

    def _ev_SeqIndex(self, e: A.SeqIndex, state) -> Val:
        if isinstance(e.seq, A.SeqLit):
            acc = BOT_VAL
            for item in e.seq.items:
                acc = acc.join(self.eval(item, state))
            return acc if not acc.is_bottom else TOP_VAL
        return type_range(e.vtype)

    def _ev_MapGet(self, e: A.MapGet, state) -> Val:
        return type_range(e.vtype)

    def _ev_FieldGet(self, e: A.FieldGet, state) -> Val:
        return type_range(e.vtype)

    def _ev_VariantGet(self, e: A.VariantGet, state) -> Val:
        return type_range(e.vtype)

    # ------------------------------------------------- condition refine

    def assume(self, e: A.Expr, state: AbsState, positive: bool = True):
        """Refine ``state`` in place under condition ``e`` (or ``!e``)."""
        if state.bottom:
            return
        if isinstance(e, A.UnOp) and e.op == "!":
            self.assume(e.operand, state, not positive)
            return
        if isinstance(e, A.Lit) and isinstance(e.value, bool):
            if e.value != positive:
                state.bottom = True
            return
        if isinstance(e, A.BinOp):
            op = e.op
            if (positive and op == "&&") or (not positive and op == "||"):
                self.assume(e.lhs, state, positive)
                self.assume(e.rhs, state, positive)
                return
            if not positive and op == "==>":
                self.assume(e.lhs, state, True)
                self.assume(e.rhs, state, False)
                return
            if not positive and op in _CMP_NEG:
                self.assume(A.BinOp(_CMP_NEG[op], e.lhs, e.rhs), state, True)
                return
            if positive and op in ("<", "<=", ">", ">="):
                lhs, rhs = e.lhs, e.rhs
                if op in (">", ">="):
                    lhs, rhs = rhs, lhs
                strict = op in ("<", ">")
                self._assume_le(lhs, rhs, strict, state)
                return
            if positive and op in ("==", "=~="):
                self._assume_eq(e.lhs, e.rhs, state)
                return
            if positive and op == "!=":
                va = self.eval(e.lhs, state)
                vb = self.eval(e.rhs, state)
                if cmp_eq(va, vb) is True:
                    state.bottom = True
                return
        if isinstance(e, A.VarE) and isinstance(e.vtype, VT.BoolType):
            state.set(e.name, TRUE_VAL if positive else FALSE_VAL)
            return
        # Opaque condition: evaluate; a definitely-wrong branch is dead.
        t = self.eval(e, state).truth()
        if t is not None and t != positive:
            state.bottom = True

    def _assume_le(self, lhs: A.Expr, rhs: A.Expr, strict: bool,
                   state: AbsState) -> None:
        vr = self.eval(rhs, state)
        if isinstance(lhs, A.VarE) and vr.itv.hi is not None:
            hi = vr.itv.hi - 1 if strict else vr.itv.hi
            state.set(lhs.name, self.eval(lhs, state).meet(
                Val(Interval(None, hi))))
        vl = self.eval(lhs, state)
        if isinstance(rhs, A.VarE) and vl.itv.lo is not None:
            lo = vl.itv.lo + 1 if strict else vl.itv.lo
            state.set(rhs.name, self.eval(rhs, state).meet(
                Val(Interval(lo, None))))
        if not isinstance(lhs, A.VarE) and not isinstance(rhs, A.VarE):
            contradicted = (cmp_le(vr, vl) if strict else cmp_lt(vr, vl))
            if contradicted is True:
                state.bottom = True

    def _assume_eq(self, lhs: A.Expr, rhs: A.Expr, state: AbsState) -> None:
        va = self.eval(lhs, state)
        vb = self.eval(rhs, state)
        m = va.meet(vb)
        if m.is_bottom:
            state.bottom = True
            return
        if isinstance(lhs, A.VarE):
            state.set(lhs.name, m)
        if isinstance(rhs, A.VarE):
            state.set(rhs.name, m)

    # -------------------------------------------------------- statements

    def exec_stmts(self, stmts: Sequence[A.Stmt], state: AbsState,
                   assigned: Optional[set] = None) -> AbsState:
        for stmt in stmts:
            if state.bottom:
                return state
            state = self.exec_stmt(stmt, state, assigned)
        return state

    def exec_stmt(self, stmt: A.Stmt, state: AbsState,
                  assigned: Optional[set] = None) -> AbsState:
        if isinstance(stmt, (A.SLet, A.SAssign)):
            state.set(stmt.name, self.eval(stmt.expr, state))
            if assigned is not None:
                assigned.add(stmt.name)
            return state
        if isinstance(stmt, A.SIf):
            then_state = state.clone()
            self.assume(stmt.cond, then_state, True)
            then_state = self.exec_stmts(stmt.then, then_state, assigned)
            else_state = state.clone()
            self.assume(stmt.cond, else_state, False)
            else_state = self.exec_stmts(stmt.els, else_state, assigned)
            return then_state.join(else_state)
        if isinstance(stmt, A.SWhile):
            return self._exec_while(stmt, state, assigned)
        if isinstance(stmt, (A.SAssert, A.SAssume)):
            self.assume(stmt.expr, state, True)
            return state
        if isinstance(stmt, A.SCall):
            self._exec_call(stmt, state, assigned)
            return state
        if isinstance(stmt, A.SReturn):
            if stmt.expr is not None:
                state.set("return!", self.eval(stmt.expr, state))
            return state
        return state

    def _exec_call(self, stmt: A.SCall, state: AbsState,
                   assigned: Optional[set]) -> None:
        callee = None
        if self.module is not None:
            try:
                callee = self.module.lookup(stmt.fn_name)
            except KeyError:
                callee = None
        rets = []
        if callee is not None and callee.ret is not None:
            rets = [type_range(callee.ret[1])]
        for i, name in enumerate(stmt.binds):
            state.set(name, rets[i] if i < len(rets) else TOP_VAL)
            if assigned is not None:
                assigned.add(name)
        for name in stmt.mut_args:
            # &mut argument: havoc to its declared type range.
            havocked = TOP_VAL
            if callee is not None:
                for p in callee.params:
                    if p.mutable:
                        havocked = type_range(p.vtype)
                        break
            state.set(name, havocked)
            if assigned is not None:
                assigned.add(name)

    def _exec_while(self, stmt: A.SWhile, state: AbsState,
                    assigned: Optional[set]) -> AbsState:
        # Names the loop body can change; everything else is stable.
        body_assigned: set[str] = set()
        probe = state.clone()
        self.exec_stmts(stmt.body, probe, body_assigned)
        if assigned is not None:
            assigned.update(body_assigned)

        # Loop-head state: havoc assigned names, then re-assume the
        # declared invariants — the same havoc+invariant seeding the WP
        # transformer uses, so the fixpoint starts where wp.py starts.
        head = state.clone()
        for name in body_assigned:
            head.env.pop(name, None)
        for inv in stmt.invariants:
            self.assume(inv, head, True)

        iters = 0
        while iters < MAX_LOOP_ITERS:
            iters += 1
            inside = head.clone()
            self.assume(stmt.cond, inside, True)
            after = self.exec_stmts(stmt.body, inside)
            for inv in stmt.invariants:
                self.assume(inv, after, True)
            joined = head.join(after)
            if joined.le(head):
                break
            head = head.widen(joined) if iters >= WIDEN_AFTER else joined
        # One narrowing pass to claw back widened bounds.
        inside = head.clone()
        self.assume(stmt.cond, inside, True)
        after = self.exec_stmts(stmt.body, inside)
        for inv in stmt.invariants:
            self.assume(inv, after, True)
        head = head.narrow(head.join(after))
        self.loop_iters += iters

        exit_state = head
        self.assume(stmt.cond, exit_state, False)
        return exit_state


# ---------------------------------------------------------------------------
# Whole-function / whole-module analysis
# ---------------------------------------------------------------------------


class FunctionReport:
    """Result of abstractly interpreting one function."""

    __slots__ = ("name", "state", "loop_iters")

    def __init__(self, name: str, state: AbsState, loop_iters: int):
        self.name = name
        self.state = state
        self.loop_iters = loop_iters


def analyze_function(module: A.Module, fn: A.Function,
                     summaries: Optional[dict] = None) -> FunctionReport:
    """Abstractly execute ``fn``: params seeded from type ranges,
    requires assumed, body interpreted with loop fixpoints."""
    interp = AbstractInterp(module, summaries)
    state = AbsState()
    for p in fn.params:
        state.set(p.name, type_range(p.vtype))
        state.set(f"old!{p.name}", type_range(p.vtype))
    for req in fn.requires:
        interp.assume(req, state, True)
    if isinstance(fn.body, (list, tuple)):
        state = interp.exec_stmts(list(fn.body), state)
    elif isinstance(fn.body, A.Expr):
        state.set("return!", interp.eval(fn.body, state))
    return FunctionReport(fn.name, state, interp.loop_iters)


def module_summaries(module: A.Module) -> dict[str, FunctionSummary]:
    """Return-value summaries for the module's spec functions, computed
    callees-first over the call-graph SCC order (:func:`scc_order`) so
    non-recursive callees sharpen their callers; recursive SCCs fall
    back to the declared return-type range."""
    from .. import AnalysisContext
    adjacency = AnalysisContext(module).call_graph
    fns = module.all_functions()
    summaries: dict[str, FunctionSummary] = {}
    for component in scc_order(adjacency, callees_first=True):
        recursive = len(component) > 1 or any(
            name in adjacency.get(name, ()) for name in component)
        for name in component:
            fn = fns.get(name)
            if fn is None or not fn.is_spec or fn.ret is None:
                continue
            ret = type_range(fn.ret[1])
            if not recursive and isinstance(fn.body, A.Expr):
                interp = AbstractInterp(module, summaries)
                state = AbsState()
                for p in fn.params:
                    state.set(p.name, type_range(p.vtype))
                ret = ret.meet(interp.eval(fn.body, state))
                if ret.is_bottom:
                    ret = type_range(fn.ret[1])
            summaries[name] = FunctionSummary(name, ret)
    return summaries
