"""Term-level abstract transfer functions and the entailment check.

This is the half of the static tier the scheduler trusts.  It works on
the *already-translated* SMT terms of a pending obligation — the
``assumptions`` list (path facts, parameter range assumptions, assumed
loop invariants) and the ``goal`` — and decides whether the assumptions
alone entail the goal under the interval × constant × congruence
product of :mod:`.domains`.

Soundness discipline: every abstract fact is derived **only** from the
obligation's own assumption list, which is a subset of the assertion
set the solver would receive (``kept ++ assumptions ++ [¬goal]``).  If
the abstract state proves the goal, the solver's quantifier-free
LIA/EUF core sees the same contradiction in ``assumptions ∧ ¬goal`` and
must answer unsat.  No builtin theory facts (sequence length axioms,
spec-function summaries) are consulted here precisely because the
solver might have pruned or under-instantiated them — the differential
harness and ``REPRO_TRIAGE=shadow`` hold this layer to "the solver can
only agree".

Terms are hash-consed (:mod:`repro.smt.terms`), so ``is`` / dict
identity is structural equality; the fact sets below lean on that.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...smt import terms as T
from ...smt.sorts import BOOL, INT
from .domains import (BOT_VAL, FALSE_VAL, TOP_VAL, TRUE_VAL, Congruence,
                      Interval, Val, cmp_eq, cmp_le, cmp_lt)

#: Fixpoint cap for re-scanning an obligation's assumption list.  The
#: assumptions arrive roughly in dependency order, so two passes settle
#: almost everything; the cap keeps the tier O(assumptions).
MAX_PASSES = 4


def _bool3_not(t: Optional[bool]) -> Optional[bool]:
    return None if t is None else (not t)


class AbsEnv:
    """Abstract state: a refinement map from terms to product values,
    plus the sets of boolean facts assumed true / false.

    ``vals`` may refine *any* term, not just variables — ``x + y <= 10``
    stores a bound on the ``x + y`` term itself, which evaluation meets
    with the structurally computed value.  ``bottom`` means the
    assumptions are contradictory (the obligation is vacuously
    entailed).
    """

    __slots__ = ("vals", "facts", "neg_facts", "bottom")

    def __init__(self):
        self.vals: dict[T.Term, Val] = {}
        self.facts: set[T.Term] = set()
        self.neg_facts: set[T.Term] = set()
        self.bottom = False

    def clone(self) -> "AbsEnv":
        env = AbsEnv.__new__(AbsEnv)
        env.vals = dict(self.vals)
        env.facts = set(self.facts)
        env.neg_facts = set(self.neg_facts)
        env.bottom = self.bottom
        return env

    # ------------------------------------------------------------- eval

    def eval(self, t: T.Term, memo: Optional[dict] = None) -> Val:
        """Over-approximate the possible values of ``t``."""
        if memo is None:
            memo = {}
        hit = memo.get(t)
        if hit is not None:
            return hit
        v = self._eval_structural(t, memo)
        stored = self.vals.get(t)
        if stored is not None:
            v = v.meet(stored)
        memo[t] = v
        return v

    def _eval_structural(self, t: T.Term, memo: dict) -> Val:
        k = t.kind
        if t.sort is BOOL:
            if t in self.facts:
                return TRUE_VAL
            if t in self.neg_facts:
                return FALSE_VAL
        if k == T.INT_CONST:
            return Val.const(t.payload)
        if k == T.BOOL_CONST:
            return TRUE_VAL if t.payload else FALSE_VAL
        if k == T.ADD:
            acc = self.eval(t.args[0], memo)
            for a in t.args[1:]:
                acc = acc.add(self.eval(a, memo))
            return acc
        if k == T.SUB:
            return self.eval(t.args[0], memo).sub(self.eval(t.args[1], memo))
        if k == T.MUL:
            return self.eval(t.args[0], memo).mul(self.eval(t.args[1], memo))
        if k == T.IDIV:
            return self.eval(t.args[0], memo).div(self.eval(t.args[1], memo))
        if k == T.IMOD:
            return self.eval(t.args[0], memo).mod(self.eval(t.args[1], memo))
        if k == T.NEG:
            return self.eval(t.args[0], memo).neg()
        if k == T.LE:
            return Val.bool3(cmp_le(self.eval(t.args[0], memo),
                                    self.eval(t.args[1], memo)))
        if k == T.LT:
            return Val.bool3(cmp_lt(self.eval(t.args[0], memo),
                                    self.eval(t.args[1], memo)))
        if k == T.EQ:
            a, b = t.args
            if a.sort is INT:
                return Val.bool3(cmp_eq(self.eval(a, memo),
                                        self.eval(b, memo)))
            if a.sort is BOOL:
                ta = self.eval(a, memo).truth()
                tb = self.eval(b, memo).truth()
                if ta is None or tb is None:
                    return TOP_VAL
                return Val.bool3(ta == tb)
            return TOP_VAL
        if k == T.NOT:
            return Val.bool3(_bool3_not(self.eval(t.args[0], memo).truth()))
        if k == T.AND:
            unknown = False
            for a in t.args:
                ta = self.eval(a, memo).truth()
                if ta is False:
                    return FALSE_VAL
                if ta is None:
                    unknown = True
            return TOP_VAL if unknown else TRUE_VAL
        if k == T.OR:
            unknown = False
            for a in t.args:
                ta = self.eval(a, memo).truth()
                if ta is True:
                    return TRUE_VAL
                if ta is None:
                    unknown = True
            return TOP_VAL if unknown else FALSE_VAL
        if k == T.IMPLIES:
            ta = self.eval(t.args[0], memo).truth()
            tb = self.eval(t.args[1], memo).truth()
            if ta is False or tb is True:
                return TRUE_VAL
            if ta is True and tb is False:
                return FALSE_VAL
            return TOP_VAL
        if k == T.ITE:
            tc = self.eval(t.args[0], memo).truth()
            if tc is True:
                return self.eval(t.args[1], memo)
            if tc is False:
                return self.eval(t.args[2], memo)
            return self.eval(t.args[1], memo).join(self.eval(t.args[2], memo))
        # VAR / APP / quantifiers / DISTINCT / bit-vectors: no structural
        # knowledge; refinements stored in ``vals`` still apply.
        return TOP_VAL

    # ----------------------------------------------------------- assume

    def _refine(self, t: T.Term, v: Val) -> bool:
        """Meet ``v`` into the stored refinement for ``t``."""
        if v is TOP_VAL:
            return False
        if t.kind in (T.INT_CONST, T.BOOL_CONST):
            # A literal's value is exact already; a contradictory
            # refinement on it still has to flip the state to bottom.
            if self.eval(t).meet(v).is_bottom:
                self.bottom = True
                return True
            return False
        old = self.vals.get(t, TOP_VAL)
        new = old.meet(v)
        if new.is_bottom:
            self.bottom = True
            return True
        if new == old:
            return False
        self.vals[t] = new
        return True

    def assume(self, t: T.Term, positive: bool = True) -> bool:
        """Constrain the state with ``t`` (or ``¬t``); True if changed."""
        if self.bottom:
            return False
        k = t.kind
        if k == T.NOT:
            return self.assume(t.args[0], not positive)
        if k == T.BOOL_CONST:
            if t.payload != positive:
                self.bottom = True
                return True
            return False
        changed = self._record_fact(t, positive)
        if (positive and k == T.AND) or (not positive and k == T.OR):
            for a in t.args:
                changed |= self.assume(a, positive)
                if self.bottom:
                    return True
            return changed
        if positive and k == T.OR:
            return self._assume_or(t.args, True) or changed
        if not positive and k == T.AND:
            return self._assume_or(t.args, False) or changed
        if k == T.IMPLIES:
            if not positive:
                # ¬(a => b)  ==  a ∧ ¬b
                changed |= self.assume(t.args[0], True)
                if not self.bottom:
                    changed |= self.assume(t.args[1], False)
                return changed
            ta = self.eval(t.args[0]).truth()
            if ta is True:
                return self.assume(t.args[1], True) or changed
            tb = self.eval(t.args[1]).truth()
            if tb is False:
                return self.assume(t.args[0], False) or changed
            return changed
        if k == T.EQ:
            a, b = t.args
            if positive:
                return self._assume_eq(a, b) or changed
            return self._assume_ne(a, b) or changed
        if k == T.LE:
            a, b = t.args
            if positive:
                return self._assume_cmp(a, b, strict=False) or changed
            return self._assume_cmp(b, a, strict=True) or changed
        if k == T.LT:
            a, b = t.args
            if positive:
                return self._assume_cmp(a, b, strict=True) or changed
            return self._assume_cmp(b, a, strict=False) or changed
        if t.sort is BOOL:
            # Opaque boolean atom (VAR / APP / quantifier): pin its value.
            changed |= self._refine(t, TRUE_VAL if positive else FALSE_VAL)
        return changed

    def _record_fact(self, t: T.Term, positive: bool) -> bool:
        target = self.facts if positive else self.neg_facts
        if t in target:
            return False
        if t in (self.neg_facts if positive else self.facts):
            self.bottom = True  # t and ¬t both assumed
            return True
        target.add(t)
        return True

    def _assume_or(self, parts: Sequence[T.Term], polarity: bool) -> bool:
        """A disjunction holds (``polarity=True``: one of ``parts``;
        ``False``: one of ``¬parts``).  Propagate when a single
        candidate is left; detect the all-refuted contradiction."""
        live = []
        for a in parts:
            ta = self.eval(a).truth()
            if ta is polarity:
                return False  # already satisfied: nothing new
            if ta is None:
                live.append(a)
        if not live:
            self.bottom = True
            return True
        if len(live) == 1:
            return self.assume(live[0], polarity)
        return False

    def _assume_eq(self, a: T.Term, b: T.Term) -> bool:
        if a.sort is INT:
            changed = False
            va, vb = self.eval(a), self.eval(b)
            m = va.meet(vb)
            if m.is_bottom:
                self.bottom = True
                return True
            changed |= self._refine(a, m)
            changed |= self._refine(b, m)
            # x mod k == r pins a congruence on x (Euclidean mod: the
            # remainder determines x's residue class mod |k|).
            for lhs, rhs_val in ((a, vb), (b, va)):
                if lhs.kind != T.IMOD or self.bottom:
                    continue
                kc = self.eval(lhs.args[1]).as_const()
                rc = rhs_val.as_const()
                if kc is not None and kc != 0 and isinstance(rc, int):
                    changed |= self._refine(
                        lhs.args[0], Val(cong=Congruence(abs(kc), rc)))
            return changed
        if a.sort is BOOL:
            ta, tb = self.eval(a).truth(), self.eval(b).truth()
            changed = False
            if ta is not None:
                changed |= self.assume(b, ta)
            if tb is not None and not self.bottom:
                changed |= self.assume(a, tb)
            return changed
        return False

    def _assume_ne(self, a: T.Term, b: T.Term) -> bool:
        if a.sort is BOOL:
            ta, tb = self.eval(a).truth(), self.eval(b).truth()
            changed = False
            if ta is not None:
                changed |= self.assume(b, not ta)
            if tb is not None and not self.bottom:
                changed |= self.assume(a, not tb)
            return changed
        if a.sort is not INT:
            return False
        if cmp_eq(self.eval(a), self.eval(b)) is True:
            self.bottom = True
            return True
        changed = False
        # Shave a constant off a matching interval endpoint.
        for x, y in ((a, b), (b, a)):
            c = self.eval(y).as_const()
            if not isinstance(c, int):
                continue
            vx = self.eval(x)
            if vx.itv.lo == c:
                changed |= self._refine(x, Val(Interval(c + 1, None)))
            elif vx.itv.hi == c:
                changed |= self._refine(x, Val(Interval(None, c - 1)))
        return changed

    def _assume_cmp(self, a: T.Term, b: T.Term, strict: bool) -> bool:
        """``a <= b`` (or ``a < b``): push interval bounds both ways."""
        if a.sort is not INT:
            return False
        changed = False
        vb = self.eval(b)
        if vb.itv.hi is not None:
            hi = vb.itv.hi - 1 if strict else vb.itv.hi
            changed |= self._refine(a, Val(Interval(None, hi)))
        va = self.eval(a)
        if va.itv.lo is not None and not self.bottom:
            lo = va.itv.lo + 1 if strict else va.itv.lo
            changed |= self._refine(b, Val(Interval(lo, None)))
        return changed


# ---------------------------------------------------------------------------
# Per-obligation entailment
# ---------------------------------------------------------------------------


def build_env(assumptions: Sequence[T.Term],
              max_passes: int = MAX_PASSES) -> tuple[AbsEnv, int]:
    """Abstract state from an assumption list, iterated to a (capped)
    fixpoint; returns the env and the number of passes taken."""
    env = AbsEnv()
    passes = 0
    changed = True
    while changed and passes < max_passes and not env.bottom:
        passes += 1
        changed = False
        for a in assumptions:
            changed |= env.assume(a)
            if env.bottom:
                break
    return env, passes


def _goal_holds(env: AbsEnv, goal: T.Term) -> bool:
    """Whether the abstract state definitely entails ``goal``."""
    if env.bottom:
        return True
    if goal in env.facts:
        return True
    if env.eval(goal).truth() is True:
        return True
    k = goal.kind
    if k == T.AND:
        return all(_goal_holds(env, g) for g in goal.args)
    if k == T.OR:
        return any(_goal_holds(env, g) for g in goal.args)
    if k == T.IMPLIES:
        sub = env.clone()
        sub.assume(goal.args[0], True)
        return _goal_holds(sub, goal.args[1])
    if k == T.NOT:
        return env.eval(goal).truth() is True
    return False


def entails(assumptions: Sequence[T.Term], goal: T.Term,
            max_passes: int = MAX_PASSES) -> tuple[bool, int]:
    """Do the assumptions alone entail the goal?

    Returns ``(proved, fixpoint_passes)``.  ``proved=True`` promises
    that ``assumptions ∧ ¬goal`` is unsatisfiable — the exact assertion
    subset the solver would check — so a sound solver can only agree.
    """
    env, passes = build_env(assumptions, max_passes)
    return _goal_holds(env, goal), passes
