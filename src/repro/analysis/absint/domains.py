"""Abstract domains for the static proving tier.

Three classic numeric domains and their reduced product:

* :class:`Interval` — ``[lo, hi]`` with optionally-infinite endpoints,
* :class:`Const` — the flat constant-propagation lattice,
* :class:`Congruence` — ``v ≡ r (mod m)`` (parity is the ``m == 2`` case),

combined into :class:`Val`, whose :func:`reduce` step lets each component
sharpen the others (a constant pins the interval, a singleton interval
becomes a constant, a congruence snaps interval endpoints inward).

All transfer functions follow the *Euclidean* division/remainder
semantics of :mod:`repro.vc.interp` and the SMT-LIB ``div``/``mod``
the solver implements — ``a mod b`` lands in ``[0, |b|)`` — so abstract
and concrete evaluation agree and can be differentially tested.

Soundness convention: every operation over-approximates.  ``None`` as an
interval endpoint means unbounded; a ``Val`` with any bottom component is
bottom (unreachable), which entails everything.
"""

from __future__ import annotations

from math import gcd
from typing import Optional


def _min_opt(*xs):
    """Min over endpoints where None means -inf."""
    if any(x is None for x in xs):
        return None
    return min(xs)


def _max_opt(*xs):
    """Max over endpoints where None means +inf."""
    if any(x is None for x in xs):
        return None
    return max(xs)


def euc_div(a: int, b: int) -> int:
    """Euclidean division, matching SMT-LIB ``div`` and ``vc.interp``."""
    return a // b if b > 0 else -(a // -b)


def euc_mod(a: int, b: int) -> int:
    """Euclidean remainder, matching SMT-LIB ``mod``: result in [0, |b|)."""
    return a % abs(b)


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------


class Interval:
    """``[lo, hi]`` over the integers; ``None`` = unbounded on that side.

    The empty interval is canonicalized to ``(0, -1)``.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int] = None, hi: Optional[int] = None):
        if lo is not None and hi is not None and lo > hi:
            lo, hi = 0, -1  # canonical empty
        self.lo = lo
        self.hi = hi

    # -- structure ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def as_const(self) -> Optional[int]:
        if self.lo is not None and self.lo == self.hi:
            return self.lo
        return None

    def contains(self, v: int) -> bool:
        return ((self.lo is None or self.lo <= v)
                and (self.hi is None or v <= self.hi))

    def __eq__(self, other) -> bool:
        return (isinstance(other, Interval)
                and (self.is_empty and other.is_empty
                     or (self.lo, self.hi) == (other.lo, other.hi)))

    def __hash__(self) -> int:
        return hash((0, -1) if self.is_empty else (self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_empty:
            return "[empty]"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    # -- lattice ------------------------------------------------------------

    def le(self, other: "Interval") -> bool:
        """Partial order: ``self`` included in ``other``."""
        if self.is_empty:
            return True
        if other.is_empty:
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return lo_ok and hi_ok

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(_min_opt(self.lo, other.lo),
                        _max_opt(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY_INTERVAL
        lo = self.lo if other.lo is None else \
            (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else \
            (other.hi if self.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = self.lo if (self.lo is not None and other.lo is not None
                         and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None
                         and other.hi <= self.hi) else None
        return Interval(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """Narrowing: refine only the bounds widening threw to infinity."""
        if self.is_empty or other.is_empty:
            return EMPTY_INTERVAL
        lo = other.lo if self.lo is None else self.lo
        hi = other.hi if self.hi is None else self.hi
        return Interval(lo, hi)

    # -- arithmetic ---------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY_INTERVAL
        lo = None if self.lo is None or other.lo is None \
            else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None \
            else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def neg(self) -> "Interval":
        if self.is_empty:
            return EMPTY_INTERVAL
        return Interval(None if self.hi is None else -self.hi,
                        None if self.lo is None else -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY_INTERVAL
        INF = float("inf")
        a_lo = -INF if self.lo is None else self.lo
        a_hi = INF if self.hi is None else self.hi
        b_lo = -INF if other.lo is None else other.lo
        b_hi = INF if other.hi is None else other.hi

        def prod(x, y):
            if x == 0 or y == 0:
                return 0  # avoids 0 * inf = nan
            return x * y

        corners = [prod(a_lo, b_lo), prod(a_lo, b_hi),
                   prod(a_hi, b_lo), prod(a_hi, b_hi)]
        lo, hi = min(corners), max(corners)
        return Interval(None if lo == -INF else int(lo),
                        None if hi == INF else int(hi))

    def div(self, other: "Interval") -> "Interval":
        """Euclidean division; top unless the divisor's sign is fixed."""
        if self.is_empty or other.is_empty:
            return EMPTY_INTERVAL
        if other.lo is not None and other.lo >= 1:
            # Positive divisor: floor(a/b) is monotone in a; extremes in b
            # are at b = other.lo or the b -> inf limit (0 or -1).
            lo = hi = None
            if self.lo is not None:
                cands = [euc_div(self.lo, other.lo)]
                cands.append(euc_div(self.lo, other.hi)
                             if other.hi is not None
                             else (0 if self.lo >= 0 else -1))
                lo = min(cands)
            if self.hi is not None:
                cands = [euc_div(self.hi, other.lo)]
                cands.append(euc_div(self.hi, other.hi)
                             if other.hi is not None
                             else (0 if self.hi >= 0 else -1))
                hi = max(cands)
            return Interval(lo, hi)
        if (other.hi is not None and other.hi <= -1
                and other.lo is not None):
            # Bounded negative divisor: dividing by -b flips the sign.
            return self.div(other.neg()).neg()
        return TOP_INTERVAL

    def mod(self, other: "Interval") -> "Interval":
        """Euclidean remainder; top unless the divisor excludes 0.

        The solver's divmod axioms are guarded by ``b >= 1`` /
        ``b <= -1``, so mod-by-zero is a fully uninterpreted value —
        any divisor interval straddling 0 constrains nothing (mirrors
        :meth:`div`).  When the sign is fixed, ``a mod b`` lands in
        ``[0, max|b| - 1]``.
        """
        if self.is_empty or other.is_empty:
            return EMPTY_INTERVAL
        if other.lo is not None and other.lo >= 1:
            # a mod b == a when 0 <= a < b is guaranteed.
            if (self.lo is not None and self.lo >= 0
                    and self.hi is not None and self.hi < other.lo):
                return self
            if other.hi is None:
                return Interval(0, None)
            return Interval(0, other.hi - 1)
        if other.hi is not None and other.hi <= -1:
            if other.lo is None:
                return Interval(0, None)
            return Interval(0, -other.lo - 1)
        return TOP_INTERVAL


TOP_INTERVAL = Interval()
EMPTY_INTERVAL = Interval(0, -1)


# ---------------------------------------------------------------------------
# Constant-propagation domain (flat lattice)
# ---------------------------------------------------------------------------


class Const:
    """Flat lattice: bottom < every concrete value < top."""

    __slots__ = ("state", "value")

    def __init__(self, state: str, value=None):
        self.state = state  # "bot" | "top" | "val"
        self.value = value

    @classmethod
    def of(cls, value) -> "Const":
        return cls("val", value)

    @property
    def is_bottom(self) -> bool:
        return self.state == "bot"

    @property
    def is_top(self) -> bool:
        return self.state == "top"

    def as_const(self):
        return self.value if self.state == "val" else None

    def __eq__(self, other) -> bool:
        return (isinstance(other, Const) and self.state == other.state
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.state, self.value))

    def __repr__(self) -> str:
        return {"bot": "⊥", "top": "⊤"}.get(self.state, repr(self.value))

    def le(self, other: "Const") -> bool:
        if self.state == "bot" or other.state == "top":
            return True
        if other.state == "bot" or self.state == "top":
            return False
        return self.value == other.value

    def join(self, other: "Const") -> "Const":
        if self.state == "bot":
            return other
        if other.state == "bot":
            return self
        if (self.state == "val" and other.state == "val"
                and self.value == other.value):
            return self
        return CONST_TOP

    def meet(self, other: "Const") -> "Const":
        if self.state == "top":
            return other
        if other.state == "top":
            return self
        if (self.state == "val" and other.state == "val"
                and self.value == other.value):
            return self
        return CONST_BOT

    # The flat lattice has finite chains: widening is just join, and
    # narrowing is meet.
    widen = join
    narrow = meet


CONST_TOP = Const("top")
CONST_BOT = Const("bot")


# ---------------------------------------------------------------------------
# Congruence domain  (v ≡ res  mod  mod)
# ---------------------------------------------------------------------------


class Congruence:
    """``v ≡ res (mod mod)``; ``mod == 0`` pins the exact constant ``res``,
    ``mod == 1`` is top.  Parity is the ``mod == 2`` fragment."""

    __slots__ = ("mod", "res")

    def __init__(self, mod: Optional[int], res: int = 0):
        # mod None encodes bottom.
        if mod is not None and mod >= 1:
            res = res % mod
        self.mod = mod
        self.res = res

    @classmethod
    def of(cls, value: int) -> "Congruence":
        return cls(0, value)

    @property
    def is_bottom(self) -> bool:
        return self.mod is None

    @property
    def is_top(self) -> bool:
        return self.mod == 1

    def as_const(self) -> Optional[int]:
        return self.res if self.mod == 0 else None

    def contains(self, v: int) -> bool:
        if self.mod is None:
            return False
        if self.mod == 0:
            return v == self.res
        return v % self.mod == self.res

    def __eq__(self, other) -> bool:
        return (isinstance(other, Congruence)
                and (self.mod, self.res) == (other.mod, other.res))

    def __hash__(self) -> int:
        return hash((self.mod, self.res))

    def __repr__(self) -> str:
        if self.mod is None:
            return "⊥"
        if self.mod == 0:
            return f"={self.res}"
        if self.mod == 1:
            return "⊤"
        return f"≡{self.res} (mod {self.mod})"

    def le(self, other: "Congruence") -> bool:
        if self.is_bottom or other.is_top:
            return True
        if other.is_bottom:
            return False
        if other.mod == 0:
            return self.mod == 0 and self.res == other.res
        if self.mod == 0:
            return other.contains(self.res)
        return self.mod % other.mod == 0 and self.res % other.mod == other.res

    def join(self, other: "Congruence") -> "Congruence":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        g = gcd(self.mod, other.mod, abs(self.res - other.res))
        if g == 0:
            return self  # equal constants
        return Congruence(g, self.res)

    def meet(self, other: "Congruence") -> "Congruence":
        if self.is_bottom or other.is_bottom:
            return CONG_BOT
        if self.mod == 0:
            return self if other.contains(self.res) else CONG_BOT
        if other.mod == 0:
            return other if self.contains(other.res) else CONG_BOT
        g = gcd(self.mod, other.mod)
        if (self.res - other.res) % g != 0:
            return CONG_BOT
        lcm = self.mod // g * other.mod
        # CRT: r ≡ self.res (mod self.mod), r ≡ other.res (mod other.mod).
        m2g = other.mod // g
        t = ((other.res - self.res) // g * pow(self.mod // g, -1, m2g)) % m2g
        return Congruence(lcm, self.res + self.mod * t)

    # Divisor chains are finite, so widening can stay join (terminating);
    # narrowing is meet.
    widen = join
    narrow = meet

    # -- arithmetic ---------------------------------------------------------

    def add(self, other: "Congruence") -> "Congruence":
        if self.is_bottom or other.is_bottom:
            return CONG_BOT
        return Congruence(gcd(self.mod, other.mod), self.res + other.res)

    def sub(self, other: "Congruence") -> "Congruence":
        return self.add(other.neg())

    def neg(self) -> "Congruence":
        if self.is_bottom:
            return CONG_BOT
        return Congruence(self.mod, -self.res)

    def mul(self, other: "Congruence") -> "Congruence":
        if self.is_bottom or other.is_bottom:
            return CONG_BOT
        m = gcd(self.mod * other.mod, self.mod * other.res,
                other.mod * self.res)
        return Congruence(m, self.res * other.res)

    def mod_by(self, other: "Congruence") -> "Congruence":
        """Euclidean ``self mod other`` when the divisor is a constant."""
        if self.is_bottom or other.is_bottom:
            return CONG_BOT
        k = other.as_const()
        if k is None or k == 0:
            return CONG_TOP
        k = abs(k)
        if self.mod == 0:
            return Congruence.of(euc_mod(self.res, k))
        g = gcd(self.mod, k)
        # v = res + t*mod, so v mod k ≡ res (mod gcd(mod, k)).
        return Congruence(g, self.res) if g > 1 else CONG_TOP

    def div_by(self, other: "Congruence") -> "Congruence":
        """Euclidean ``self div other`` for exact constant divisors."""
        if self.is_bottom or other.is_bottom:
            return CONG_BOT
        k = other.as_const()
        if k is None or k == 0:
            return CONG_TOP
        if self.mod == 0:
            return Congruence.of(euc_div(self.res, k))
        if k > 0 and self.mod % k == 0 and self.res % k == 0:
            # k divides every concretization: division is exact.
            return Congruence(self.mod // k, self.res // k)
        return CONG_TOP


CONG_TOP = Congruence(1)
CONG_BOT = Congruence(None)


# ---------------------------------------------------------------------------
# Reduced product
# ---------------------------------------------------------------------------


class Val:
    """Reduced product of interval × constant × congruence.

    Booleans ride the constant component only.  A bottom anywhere makes
    the whole value bottom (the state is unreachable).
    """

    __slots__ = ("itv", "cst", "cong")

    def __init__(self, itv: Interval = TOP_INTERVAL,
                 cst: Const = CONST_TOP,
                 cong: Congruence = CONG_TOP):
        self.itv = itv
        self.cst = cst
        self.cong = cong

    # -- constructors -------------------------------------------------------

    @classmethod
    def top(cls) -> "Val":
        return TOP_VAL

    @classmethod
    def bottom(cls) -> "Val":
        return BOT_VAL

    @classmethod
    def const(cls, v) -> "Val":
        if isinstance(v, bool):
            return TRUE_VAL if v else FALSE_VAL
        return cls(Interval(v, v), Const.of(v), Congruence.of(v))

    @classmethod
    def range(cls, lo: Optional[int], hi: Optional[int]) -> "Val":
        return cls(Interval(lo, hi)).reduce()

    @classmethod
    def bool3(cls, t: Optional[bool]) -> "Val":
        if t is None:
            return TOP_VAL
        return cls.const(t)

    # -- structure ----------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return (self.itv.is_empty or self.cst.is_bottom
                or self.cong.is_bottom)

    def as_const(self):
        return self.cst.as_const()

    def truth(self) -> Optional[bool]:
        """Three-valued boolean reading: True / False / unknown (None)."""
        c = self.cst.as_const()
        return c if isinstance(c, bool) else None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Val):
            return NotImplemented
        if self.is_bottom and other.is_bottom:
            return True
        return (self.itv == other.itv and self.cst == other.cst
                and self.cong == other.cong)

    def __hash__(self) -> int:
        if self.is_bottom:
            return hash("bot-val")
        return hash((self.itv, self.cst, self.cong))

    def __repr__(self) -> str:
        if self.is_bottom:
            return "⊥"
        return f"Val({self.itv!r}, {self.cst!r}, {self.cong!r})"

    # -- reduction ----------------------------------------------------------

    def reduce(self) -> "Val":
        """Let the components sharpen each other (the *reduced* product)."""
        if self.is_bottom:
            return BOT_VAL
        itv, cst, cong = self.itv, self.cst, self.cong
        c = cst.as_const()
        if isinstance(c, bool):
            return self  # boolean: the other components carry nothing
        if c is None:
            c = itv.as_const()
        if c is None:
            c = cong.as_const()
        if c is not None:
            itv = itv.meet(Interval(c, c))
            cst = cst.meet(Const.of(c))
            cong = cong.meet(Congruence.of(c))
            if itv.is_empty or cst.is_bottom or cong.is_bottom:
                return BOT_VAL
            return Val(itv, cst, cong)
        # Congruence snaps finite interval endpoints inward.
        if cong.mod is not None and cong.mod >= 2 and not itv.is_top:
            lo, hi = itv.lo, itv.hi
            if lo is not None:
                lo = lo + (cong.res - lo) % cong.mod
            if hi is not None:
                hi = hi - (hi - cong.res) % cong.mod
            itv = itv.meet(Interval(lo, hi))
            if itv.is_empty:
                return BOT_VAL
            if itv.as_const() is not None:
                return Val(itv, cst, cong).reduce()
        return Val(itv, cst, cong)

    # -- lattice ------------------------------------------------------------

    def le(self, other: "Val") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        return (self.itv.le(other.itv) and self.cst.le(other.cst)
                and self.cong.le(other.cong))

    def join(self, other: "Val") -> "Val":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Val(self.itv.join(other.itv), self.cst.join(other.cst),
                   self.cong.join(other.cong))

    def meet(self, other: "Val") -> "Val":
        v = Val(self.itv.meet(other.itv), self.cst.meet(other.cst),
                self.cong.meet(other.cong))
        return v.reduce()

    def widen(self, other: "Val") -> "Val":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Val(self.itv.widen(other.itv), self.cst.widen(other.cst),
                   self.cong.widen(other.cong))

    def narrow(self, other: "Val") -> "Val":
        if self.is_bottom or other.is_bottom:
            return BOT_VAL
        return Val(self.itv.narrow(other.itv), self.cst.narrow(other.cst),
                   self.cong.narrow(other.cong))

    # -- arithmetic ---------------------------------------------------------

    def _binop(self, other: "Val", itv_op, cong_op, fold) -> "Val":
        if self.is_bottom or other.is_bottom:
            return BOT_VAL
        a, b = self.as_const(), other.as_const()
        cst = CONST_TOP
        if a is not None and b is not None:
            folded = fold(a, b)
            if folded is None:
                return TOP_VAL  # undefined (division by zero)
            cst = Const.of(folded)
        return Val(itv_op(self.itv, other.itv),
                   cst,
                   cong_op(self.cong, other.cong)).reduce()

    def add(self, other: "Val") -> "Val":
        return self._binop(other, Interval.add, Congruence.add,
                           lambda a, b: a + b)

    def sub(self, other: "Val") -> "Val":
        return self._binop(other, Interval.sub, Congruence.sub,
                           lambda a, b: a - b)

    def mul(self, other: "Val") -> "Val":
        return self._binop(other, Interval.mul, Congruence.mul,
                           lambda a, b: a * b)

    def div(self, other: "Val") -> "Val":
        return self._binop(other, Interval.div, Congruence.div_by,
                           lambda a, b: euc_div(a, b) if b != 0 else None)

    def mod(self, other: "Val") -> "Val":
        return self._binop(other, Interval.mod, Congruence.mod_by,
                           lambda a, b: euc_mod(a, b) if b != 0 else None)

    def neg(self) -> "Val":
        if self.is_bottom:
            return BOT_VAL
        return Val(self.itv.neg(), CONST_TOP if self.as_const() is None
                   else Const.of(-self.as_const()), self.cong.neg()).reduce()


TOP_VAL = Val()
BOT_VAL = Val(EMPTY_INTERVAL, CONST_BOT, CONG_BOT)
TRUE_VAL = Val(TOP_INTERVAL, Const.of(True), CONG_TOP)
FALSE_VAL = Val(TOP_INTERVAL, Const.of(False), CONG_TOP)


# ---------------------------------------------------------------------------
# Abstract comparisons (three-valued)
# ---------------------------------------------------------------------------


def cmp_le(a: Val, b: Val) -> Optional[bool]:
    """``a <= b``: True / False when decided by the intervals, else None."""
    if a.is_bottom or b.is_bottom:
        return True  # vacuous: no concrete state reaches the comparison
    if (a.itv.hi is not None and b.itv.lo is not None
            and a.itv.hi <= b.itv.lo):
        return True
    if (a.itv.lo is not None and b.itv.hi is not None
            and a.itv.lo > b.itv.hi):
        return False
    return None


def cmp_lt(a: Val, b: Val) -> Optional[bool]:
    if a.is_bottom or b.is_bottom:
        return True
    if (a.itv.hi is not None and b.itv.lo is not None
            and a.itv.hi < b.itv.lo):
        return True
    if (a.itv.lo is not None and b.itv.hi is not None
            and a.itv.lo >= b.itv.hi):
        return False
    return None


def cmp_eq(a: Val, b: Val) -> Optional[bool]:
    if a.is_bottom or b.is_bottom:
        return True
    ac, bc = a.as_const(), b.as_const()
    if ac is not None and bc is not None:
        return ac == bc
    if a.meet(b).is_bottom:
        return False  # disjoint intervals or incompatible congruences
    return None
