"""Shared call-graph / SCC utilities.

Three passes used to rebuild the same networkx scaffolding from scratch:
:mod:`repro.analysis.termination` and :mod:`repro.analysis.triggers` both
materialize a ``DiGraph`` and filter the non-recursive singleton SCCs, and
:mod:`repro.epr` wraps ``nx.find_cycle`` in a try/except.  The abstract
interpreter (:mod:`repro.analysis.absint`) additionally needs a bottom-up
(callees-first) SCC order for interprocedural summaries.  This module is
the one home for all of it.

Everything here is deterministic for a fixed construction order: node and
edge insertion follow dict order, and the SCC condensation is traversed
with a stable topological sort, so downstream consumers (summary
computation, byte-identical verdict replay) see the same order on every
run.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import networkx as nx


def build_digraph(adjacency: Mapping[object, Iterable[object]]) -> nx.DiGraph:
    """A ``DiGraph`` from an adjacency mapping (``node -> successors``).

    Nodes without successors are still added, so isolated functions show
    up in SCC traversals.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(adjacency)
    for src, dsts in adjacency.items():
        graph.add_edges_from((src, d) for d in dsts)
    return graph


def recursive_sccs(graph: nx.DiGraph) -> Iterator[set]:
    """Strongly connected components that contain at least one cycle.

    Filters the non-recursive singletons — an SCC of one node counts only
    when the node calls itself — which is the check termination and
    matching-loop analysis both used to inline.
    """
    for scc in nx.strongly_connected_components(graph):
        if len(scc) == 1:
            node = next(iter(scc))
            if not graph.has_edge(node, node):
                continue
        yield scc


def find_cycle(graph: nx.DiGraph) -> Optional[list[tuple]]:
    """``nx.find_cycle`` returning ``None`` instead of raising."""
    try:
        return list(nx.find_cycle(graph))
    except nx.NetworkXNoCycle:
        return None


def scc_order(adjacency: Mapping[object, Iterable[object]],
              callees_first: bool = True) -> list[list]:
    """SCCs of a call graph in dependency order, each sorted for stability.

    With ``callees_first`` (the default), an SCC appears after every SCC
    it calls into — the order interprocedural summary computation wants:
    by the time a function is summarized, all of its callees already are,
    and only members of a genuinely recursive SCC see an unfinished
    summary.
    """
    graph = build_digraph(adjacency)
    cond = nx.condensation(graph)
    order = list(nx.topological_sort(cond))
    if callees_first:
        order.reverse()
    return [sorted(cond.nodes[c]["members"]) for c in order]


def is_recursive(adjacency: Mapping[object, Iterable[object]],
                 members: Iterable[object]) -> bool:
    """Whether an SCC (as returned by :func:`scc_order`) is cyclic."""
    members = list(members)
    if len(members) > 1:
        return True
    node = members[0]
    return node in adjacency.get(node, ())
