"""Mode checker: spec/proof/exec discipline, statically (§3.1).

Verus's mode system is the first line of defense: ghost code can never
leak into compiled state and spec functions are pure by construction.
Our embedded AST makes the same promises, but until now they were only
enforced *dynamically* — ``VcGen`` raises ``VcError``/``EncodeError``
mid-planning, and some violations (e.g. binding a proof function's
ghost result into an exec local) were silently encoded.  This pass
checks the discipline up front:

* **spec purity** — a spec function's body is a pure expression that
  calls only spec functions;
* **spec positions** — requires/ensures/decreases, assert/assume
  expressions, and loop invariants are spec-mode: any function they
  mention must be a spec function;
* **ghost containment** — exec code cannot bind a proof call's (ghost)
  result into exec state, and a proof call cannot mutate exec
  variables through ``&mut`` arguments;
* **call direction** — proof code cannot call exec functions, and
  spec functions cannot be called for effect (``SCall``) or non-spec
  functions in expression position.
"""

from __future__ import annotations

from ..vc import ast as A
from . import ERROR, AnalysisContext, AnalysisPass, Finding, walk_expr, \
    walk_stmts, spec_exprs_of


def _exec_position_exprs(fn: A.Function):
    """``(expr, what)`` pairs for every *exec-mode* expression position
    of a statement body (spec positions are yielded by
    :func:`repro.analysis.spec_exprs_of` instead)."""
    for stmt in walk_stmts(fn.body):
        if isinstance(stmt, (A.SLet, A.SAssign)):
            yield stmt.expr, f"assignment to {stmt.name!r}", stmt
        elif isinstance(stmt, A.SIf):
            yield stmt.cond, "if condition", stmt
        elif isinstance(stmt, A.SWhile):
            yield stmt.cond, "while condition", stmt
        elif isinstance(stmt, A.SCall):
            for a in stmt.args:
                yield a, f"argument of {stmt.fn_name}", stmt
        elif isinstance(stmt, A.SReturn):
            if stmt.expr is not None:
                yield stmt.expr, "return value", stmt


class ModeCheckPass(AnalysisPass):
    """Enforce the spec/proof/exec mode discipline before any encoding."""

    id = "modes"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        all_fns = ctx.module.all_functions()

        def err(where, message, span, suggestion=""):
            findings.append(Finding(self.id, ERROR, where, message,
                                    span=span, suggestion=suggestion))

        for name, fn in ctx.module.functions.items():
            where = ctx.qualify(name)
            self._check_spec_purity(fn, where, all_fns, err)
            self._check_spec_positions(fn, where, all_fns, err)
            self._check_statements(fn, where, all_fns, err)
        return findings

    # ------------------------------------------------------------- rules

    def _check_spec_purity(self, fn, where, all_fns, err) -> None:
        if not fn.is_spec:
            return
        if isinstance(fn.body, (list, tuple)):
            err(where, "spec function body must be a pure expression, "
                       "not a statement block", fn.span,
                "rewrite the body as an expression (use ite/let)")
            return
        if not isinstance(fn.body, A.Expr):
            return
        for sub in walk_expr(fn.body):
            if isinstance(sub, A.Call):
                callee = all_fns.get(sub.fn_name)
                if callee is not None and not callee.is_spec:
                    err(where,
                        f"spec function calls {callee.mode} function "
                        f"{sub.fn_name!r}; spec functions must be pure "
                        f"and may only call spec functions", fn.span,
                        f"make {sub.fn_name!r} a spec function or move "
                        f"the call into proof/exec code")

    def _check_spec_positions(self, fn, where, all_fns, err) -> None:
        for e, what in spec_exprs_of(fn):
            for sub in walk_expr(e):
                if isinstance(sub, A.Call):
                    callee = all_fns.get(sub.fn_name)
                    if callee is not None and not callee.is_spec:
                        err(where,
                            f"{what} must be a spec-mode expression but "
                            f"calls {callee.mode} function "
                            f"{sub.fn_name!r}",
                            getattr(e, "span", None) or fn.span,
                            f"wrap the fact in a spec function, or prove "
                            f"it with a proof-fn call statement")

    def _check_statements(self, fn, where, all_fns, err) -> None:
        if not isinstance(fn.body, (list, tuple)):
            return
        for stmt in walk_stmts(fn.body):
            if not isinstance(stmt, A.SCall):
                continue
            callee = all_fns.get(stmt.fn_name)
            if callee is None:
                continue
            span = stmt.span or fn.span
            if callee.is_spec:
                err(where,
                    f"spec function {stmt.fn_name!r} cannot be called "
                    f"for effect", span,
                    "use it inside a spec-mode expression instead")
            elif fn.mode == A.EXEC and callee.mode == A.PROOF:
                if stmt.binds:
                    err(where,
                        f"exec code binds the ghost result of proof "
                        f"function {stmt.fn_name!r} into exec state "
                        f"({', '.join(stmt.binds)})", span,
                        "ghost results are erased at compile time; "
                        "recompute the value in exec code")
                if stmt.mut_args:
                    err(where,
                        f"proof call {stmt.fn_name!r} mutates exec "
                        f"variable(s) {', '.join(stmt.mut_args)}; proof "
                        f"code cannot write exec state", span,
                        "pass the values by ghost snapshot instead of "
                        "&mut")
            elif fn.mode == A.PROOF and callee.mode == A.EXEC:
                err(where,
                    f"proof function calls exec function "
                    f"{stmt.fn_name!r}; proof code is erased and cannot "
                    f"have exec effects", span,
                    f"make {stmt.fn_name!r} a proof function or move "
                    f"the call into exec code")
        # Expression-position calls in exec/proof bodies must be spec
        # calls (the translator enforces this dynamically as
        # EncodeError; we report it with provenance instead).
        for e, what, stmt in _exec_position_exprs(fn):
            for sub in walk_expr(e):
                if isinstance(sub, A.Call):
                    callee = all_fns.get(sub.fn_name)
                    if callee is not None and not callee.is_spec:
                        err(where,
                            f"{callee.mode} function {sub.fn_name!r} "
                            f"called in expression position ({what})",
                            stmt.span or fn.span,
                            "use a call statement (SCall/call_stmt) and "
                            "bind its result")
