"""Termination lint: recursion needs a ``decreases`` measure (§3.1).

The §3.1 encoding turns every spec function into a definitional axiom

    forall args. spec.f(args) == body(args)

whose soundness *assumes* the function is total: a non-terminating
definition like ``f(x) == f(x) + 1`` makes the axiom inconsistent and
proves anything.  Verus discharges that assumption by requiring a
``decreases`` clause on every recursive spec/proof function and
checking it strictly decreases.  This pass reproduces the static half:
it computes the strongly connected components of the call graph (over
the module and everything it imports, so cross-module recursion is
seen) and reports every recursive spec/proof function defined in the
analyzed module that lacks a measure.  Recursive exec functions get a
warning — they cannot break soundness, only liveness.
"""

from __future__ import annotations

from ..vc import ast as A
from . import ERROR, WARNING, AnalysisContext, AnalysisPass, Finding
from .graph import build_digraph, recursive_sccs


class TerminationPass(AnalysisPass):
    """Flag recursion without a ``decreases`` clause."""

    id = "termination"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        graph = build_digraph(ctx.call_graph)
        all_fns = ctx.module.all_functions()
        own = set(ctx.module.functions)
        for scc in recursive_sccs(graph):
            members = sorted(scc)
            cycle = " -> ".join(members + [members[0]])
            for name in members:
                if name not in own:
                    continue  # imported function: analyzed with its module
                fn = all_fns[name]
                if fn.decreases is not None:
                    continue
                if fn.mode in (A.SPEC, A.PROOF):
                    what = ("totality of pure spec functions is a "
                            "soundness assumption of the definitional-"
                            "axiom encoding"
                            if fn.mode == A.SPEC else
                            "a non-terminating proof is not a proof")
                    findings.append(Finding(
                        self.id, ERROR, ctx.qualify(name),
                        f"recursive {fn.mode} function has no decreases "
                        f"clause ({what}); recursion cycle: {cycle}",
                        span=fn.span,
                        suggestion="add a decreases=... measure that "
                                   "strictly shrinks on every recursive "
                                   "call"))
                else:
                    findings.append(Finding(
                        self.id, WARNING, ctx.qualify(name),
                        f"recursive exec function has no decreases "
                        f"clause; termination is unchecked (cycle: "
                        f"{cycle})",
                        span=fn.span,
                        suggestion="add a decreases=... measure"))
        return findings
