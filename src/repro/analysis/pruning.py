"""Pruning advisor: spec context no obligation ever pulls in (§3.1).

Context pruning ships each obligation with only the definitional
axioms its translation reaches — the heart of the paper's query
economy.  The flip side: a spec function that *no* exec/proof function
reaches contributes nothing to any query; it is dead specification
weight that every reader (and every fingerprint) still carries.  This
pass recomputes the same reachability the VC generator uses
(:meth:`repro.vc.wp.VcGen.reachable_spec_fns`) over every obligation
owner and reports the spec functions left over, as info findings.

The enforcing counterpart lives in :mod:`repro.vc.prune`: the same
reachability idea, sharpened per obligation and applied for real —
axioms whose necessary trigger symbol the goal cannot reach are dropped
from the query before encoding, not just reported.
"""

from __future__ import annotations

from ..vc import ast as A
from . import INFO, AnalysisContext, AnalysisPass, Finding


class PruningAdvisorPass(AnalysisPass):
    """Flag spec functions unreachable from every obligation."""

    id = "pruning"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        from ..vc.wp import VcGen
        gen = VcGen(ctx.module, ctx.vc_config)
        roots = [fn for fn in ctx.module.functions.values()
                 if fn.mode in (A.EXEC, A.PROOF) and fn.body is not None]
        if not roots:
            return []  # pure spec library: nothing is an obligation yet
        used: set[str] = set()
        for fn in roots:
            used.update(s.name for s in gen.reachable_spec_fns(fn))
        findings: list[Finding] = []
        for name, fn in ctx.module.functions.items():
            if not fn.is_spec or fn.body is None or name in used:
                continue
            findings.append(Finding(
                self.id, INFO, ctx.qualify(name),
                "spec function is not reachable from any exec/proof "
                "function's specs or body; context pruning drops it "
                "from every query", span=fn.span,
                suggestion="delete it, or move it to a library module "
                           "that users import on demand"))
        return findings
