"""Matching-loop detector: static trigger analysis (§3.1).

Conservative trigger selection is the paper's answer to Dafny-style
instantiation blowup, but no selection policy can save a quantifier
whose *body* creates terms that re-fire its own (or another axiom's)
trigger with a strictly larger instantiation — the classic matching
loop, which shows up at solve time as an E-matching hang.  This pass
finds the loops before any solver exists:

1. every quantified spec expression in the module (requires/ensures,
   asserts, invariants, spec bodies) is translated to solver terms and
   run through the *same* :func:`repro.smt.quant.select_triggers` the
   solver will use, so the analysis sees exactly the triggers the
   E-matcher will;
2. a symbol graph is built: an edge ``f -> g`` means a quantifier
   triggered on an ``f``-application creates a *new* ``g``-application
   mentioning its bound variables.  The edge is **growing** when the
   new term nests a bound variable under a further uninterpreted
   application — matching it binds a strictly larger instantiation
   term (``f(x)`` creating ``f(g(x))`` is the one-axiom case);
3. a cycle through at least one growing edge is a matching loop:
   error.  Silent trigger-selection degradations (broad policy falling
   back to conservative, brittle multi-pattern groups — the same
   events the solver now counts in ``Stats.trigger_fallbacks``) and
   quantifiers with no inferable trigger at all are warnings.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..smt import terms as T
from ..smt.quant import TriggerError, select_triggers
from ..vc import ast as A
from ..vc.encode import EncodeError, Encoder
from . import ERROR, WARNING, AnalysisContext, AnalysisPass, Finding, \
    spec_exprs_of, walk_expr
from .graph import recursive_sccs


def _spec_positions(fn: A.Function):
    """All spec-mode expressions of a function, including a spec body."""
    yield from spec_exprs_of(fn)
    if fn.is_spec and isinstance(fn.body, A.Expr):
        yield fn.body, "spec body"


class _Translator:
    """Translate spec expressions to solver terms with zero solver work.

    Reuses the production expression translator (``VcGen.CTX_CLS``), so
    quantifier guards/triggers come out exactly as the encoder would
    emit them; free program variables are bound to fresh constants of
    the right sort on demand (we analyze expressions in isolation, not
    along a symbolic execution path).
    """

    def __init__(self, ctx: AnalysisContext):
        from ..vc.wp import VcGen
        self.gen = VcGen(ctx.module, ctx.vc_config)
        self.encoder = Encoder()
        self._fnctx = {}

    def translate(self, fn: A.Function, expr: A.Expr) -> Optional[T.Term]:
        from ..vc.wp import VcGen
        fnctx = self._fnctx.get(fn.name)
        if fnctx is None:
            fnctx = VcGen.CTX_CLS(self.gen, fn, self.encoder)
            self._fnctx[fn.name] = fnctx
        env: dict[str, T.Term] = {}
        old_env: dict[str, T.Term] = {}
        try:
            for sub in walk_expr(expr):
                if isinstance(sub, A.VarE) and sub.name not in env:
                    env[sub.name] = T.Var(
                        f"an!{sub.name}", self.encoder.sort_of(sub.vtype))
                elif isinstance(sub, A.Old) and sub.name not in old_env:
                    old_env[sub.name] = T.Var(
                        f"an!old!{sub.name}",
                        self.encoder.sort_of(sub.vtype))
            return fnctx.tr(expr, env, spec_mode=True, old_env=old_env)
        except (EncodeError, KeyError, TypeError):
            # Unresolvable reference or unencodable construct: planning
            # will produce the real (dynamic) error with full context.
            return None


class MatchingLoopPass(AnalysisPass):
    """Detect matching loops and silent trigger-selection fallbacks."""

    id = "matching-loop"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        translator = _Translator(ctx)
        policy = ctx.vc_config.trigger_policy
        graph = nx.DiGraph()
        # decl -> where-strings of the quantifiers contributing edges
        sources: dict[T.FuncDecl, set[str]] = {}
        for name, fn in ctx.module.functions.items():
            where = ctx.qualify(name)
            seen_quants: set[T.Term] = set()
            for expr, what in _spec_positions(fn):
                term = translator.translate(fn, expr)
                if term is None:
                    continue
                for quant in term.subterms():
                    if quant.kind != T.FORALL or quant in seen_quants:
                        continue
                    seen_quants.add(quant)
                    self._analyze_quant(quant, policy, where, what,
                                        fn, graph, sources, findings)
        findings.extend(self._loop_findings(ctx, graph, sources))
        return findings

    # ------------------------------------------------------- per-quant

    def _analyze_quant(self, quant, policy, where, what, fn, graph,
                       sources, findings) -> None:
        fallbacks: list[str] = []
        try:
            groups = select_triggers(quant, policy,
                                     on_fallback=fallbacks.append)
        except TriggerError as err:
            findings.append(Finding(
                self.id, WARNING, where,
                f"quantifier in {what} has no inferable trigger "
                f"({err}); it can only be instantiated by MBQI",
                span=fn.span,
                suggestion="supply an explicit trigger group or "
                           "restructure the body around an "
                           "uninterpreted application"))
            return
        for kind in fallbacks:
            findings.append(Finding(
                self.id, WARNING, where,
                f"trigger selection for a quantifier in {what} "
                f"silently degraded ({kind}); instantiation behavior "
                f"may be brittle", span=fn.span,
                suggestion="supply an explicit trigger group "
                           "(triggers=[[...]])"))
        bound = frozenset(quant.bound_vars)
        trigger_subterms: set[T.Term] = set()
        trigger_roots: set[T.FuncDecl] = set()
        for group in groups:
            for pattern in group:
                trigger_subterms.update(pattern.subterms())
                if pattern.kind == T.APP:
                    trigger_roots.add(pattern.payload)
        if not trigger_roots:
            return
        for s in set(quant.body.subterms()):
            if (s.kind != T.APP or not (s.free_vars() & bound)
                    or s in trigger_subterms):
                continue
            # A new term the instantiation will create.  It feeds a
            # loop when a bound variable sits under a *nested*
            # uninterpreted application: matching `s` against some
            # trigger then binds a strictly larger term.
            growing = any(sub is not s and sub.kind == T.APP
                          and (sub.free_vars() & bound)
                          for sub in s.subterms())
            for root in trigger_roots:
                if graph.has_edge(root, s.payload):
                    if growing:
                        graph[root][s.payload]["growing"] = True
                else:
                    graph.add_edge(root, s.payload, growing=growing)
                sources.setdefault(root, set()).add(where)
                sources.setdefault(s.payload, set()).add(where)

    # ------------------------------------------------------ loop check

    def _loop_findings(self, ctx, graph, sources) -> list[Finding]:
        findings: list[Finding] = []
        for scc in recursive_sccs(graph):
            inner = [(u, v) for u, v in graph.edges(scc)
                     if u in scc and v in scc]
            if not any(graph[u][v]["growing"] for u, v in inner):
                continue  # bounded back-and-forth, not a loop
            symbols = sorted(d.name for d in scc)
            involved = sorted(set().union(
                *(sources.get(d, set()) for d in scc)))
            findings.append(Finding(
                self.id, ERROR, ctx.module.name,
                f"potential matching loop through "
                f"{' -> '.join(symbols + symbols[:1])}: instantiating "
                f"these quantifiers creates ever-larger terms that "
                f"re-fire their own triggers (from: "
                f"{', '.join(involved)})",
                suggestion="add explicit triggers that do not match "
                           "the terms the body creates, or bound the "
                           "quantifier with a guard predicate"))
        return findings
