"""Named automation profiles: the verification dial, not a switch.

"Tunable Automation in Automated Program Verification" (Bai,
Hawblitzel, Lattuada) argues that SMT automation should be exposed as a
*dial*: different obligations want different trigger policies, context
pruning, quantifier-instantiation machinery, and step budgets.  An
:class:`AutomationProfile` is one detent on that dial — a frozen bundle
of solver knobs (:class:`~repro.smt.solver.SolverConfig` overrides),
context-pruning aggressiveness (``vc/prune.py``), E-matching-vs-MBQI
preference, and the conjunct-splitting strategy the retry ladder may
use — plus the run-level defaults (warm contexts, retry attempts) a
:class:`~repro.api.VerifyConfig` collapses into when the corresponding
field is left unset.

Semantics that the rest of the pipeline depends on:

* **Identity of ``default``** — every solver-facing field of the
  ``default`` profile is ``None`` ("inherit"), and
  :meth:`AutomationProfile.apply_solver` returns the *same* config
  object when it has nothing to override.  Digests, cache keys, and
  warm-prefix group keys under the default profile are therefore
  byte-identical to a build without profiles at all.

* **Digest keying** — a non-default profile overrides real
  ``SolverConfig`` attributes, and every attribute participates in
  :func:`repro.smt.fingerprint.solver_config_key`, so the proof cache
  automatically keys entries on the *effective* profile: two profiles
  never share a cache entry for the same query text.

* **Escalation** — the retry ladder's "heavier" rungs are expressed as
  a profile transform (:meth:`AutomationProfile.escalated` /
  :func:`escalate_config`): every resource budget doubles and the step
  budget quadruples, exactly the historical ladder semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from ..smt.quant import BROAD, CONSERVATIVE
from ..smt.solver import SolverConfig

__all__ = ["AutomationProfile", "UnknownProfileError", "PROFILES",
           "RACE_ORDER", "get_profile", "profile_names",
           "portfolio_candidates", "escalate_config"]

#: SolverConfig attributes a profile may override (None = inherit).
_SOLVER_FIELDS = ("trigger_policy", "max_rounds", "max_instantiations",
                  "mbqi", "mbqi_max_universe", "sat_conflict_budget",
                  "nonlinear", "max_steps")

#: Splitting strategies: "ladder" lets the retry ladder's split rung
#: re-prove a stubborn conjunctive goal piecewise; "off" skips that rung
#: (frugal runs should not quietly multiply their query count).
SPLIT_STRATEGIES = ("ladder", "off")


class UnknownProfileError(ValueError):
    """An unrecognized profile name (surfaces the known ones)."""

    def __init__(self, name):
        self.name = name
        super().__init__(
            f"unknown automation profile {name!r} "
            f"(available: {', '.join(profile_names())})")


@dataclass(frozen=True)
class AutomationProfile:
    """One named detent on the automation dial.

    Solver-facing fields mirror :class:`~repro.smt.solver.SolverConfig`
    attributes; ``None`` means "inherit whatever the VcConfig/solver
    default is".  ``prune_context`` overrides
    :class:`~repro.vc.wp.VcConfig.prune_context` the same way.

    ``default_incremental`` / ``default_retries`` are the *run-level*
    defaults this profile implies; an explicit
    :class:`~repro.api.VerifyConfig` field always wins over them.
    """

    name: str
    doc: str = ""
    # --- solver knobs (None = inherit) ---------------------------------
    trigger_policy: Optional[str] = None
    max_rounds: Optional[int] = None
    max_instantiations: Optional[int] = None
    mbqi: Optional[bool] = None
    mbqi_max_universe: Optional[int] = None
    sat_conflict_budget: Optional[int] = None
    nonlinear: Optional[bool] = None
    max_steps: Optional[int] = None
    # --- VC-generation knobs -------------------------------------------
    prune_context: Optional[bool] = None
    split_strategy: str = "ladder"
    # --- run-level defaults (explicit VerifyConfig fields win) ---------
    default_incremental: bool = False
    default_retries: int = 0
    # Static proving tier (repro.analysis.absint): whether obligations
    # entailed by their path assumptions under the interval/constant/
    # congruence product are discharged with no solver.  Off for the
    # bitvector and epr detents, whose goals live outside the tier's
    # integer-arithmetic fragment anyway.
    default_triage: bool = True

    def __post_init__(self):
        if self.split_strategy not in SPLIT_STRATEGIES:
            raise ValueError(f"split_strategy must be one of "
                             f"{SPLIT_STRATEGIES}, got "
                             f"{self.split_strategy!r}")

    def solver_overrides(self) -> dict:
        """The non-``None`` SolverConfig overrides, by attribute name."""
        return {f: getattr(self, f) for f in _SOLVER_FIELDS
                if getattr(self, f) is not None}

    def apply_solver(self, cfg: SolverConfig) -> SolverConfig:
        """``cfg`` with this profile's solver knobs layered on a copy.

        Returns ``cfg`` itself (same object) when there is nothing to
        override, so the ``default`` profile never perturbs digests,
        warm-prefix keys, or shared-config identity.
        """
        overrides = self.solver_overrides()
        if not overrides or all(
                getattr(cfg, k) == v for k, v in overrides.items()):
            return cfg
        out = SolverConfig(**vars(cfg))
        for k, v in overrides.items():
            setattr(out, k, v)
        return out

    def escalated(self) -> "AutomationProfile":
        """The retry ladder's heavier variant of this profile: budgets
        doubled, step budget quadrupled (``None`` fields escalate from
        the stock :class:`SolverConfig` defaults)."""
        base = self.apply_solver(SolverConfig())
        boosted = escalate_config(base)
        kw = {f.name: getattr(self, f.name) for f in fields(self)}
        kw.update(name=f"{self.name}+escalated",
                  doc=f"ladder escalation of {self.name!r}",
                  max_rounds=boosted.max_rounds,
                  max_instantiations=boosted.max_instantiations,
                  sat_conflict_budget=boosted.sat_conflict_budget,
                  max_steps=boosted.max_steps)
        return AutomationProfile(**kw)

    def describe(self) -> dict:
        """JSON-able summary (the server's ``profiles`` verb payload)."""
        return {"name": self.name, "doc": self.doc,
                "solver": self.solver_overrides(),
                "prune_context": self.prune_context,
                "split_strategy": self.split_strategy,
                "default_incremental": self.default_incremental,
                "default_retries": self.default_retries,
                "default_triage": self.default_triage}


def escalate_config(cfg: SolverConfig) -> SolverConfig:
    """A copy of ``cfg`` with every resource budget raised — the
    ladder's "fresh context" and "split" rungs trade more work for a
    chance of discharging a goal that blew its budget."""
    boosted = SolverConfig(**vars(cfg))
    boosted.max_rounds *= 2
    boosted.max_instantiations *= 2
    boosted.sat_conflict_budget *= 2
    if boosted.max_steps is not None:
        boosted.max_steps *= 4
    return boosted


#: The shipped dial detents.  ``default`` is a strict identity; the
#: others override real SolverConfig attributes and therefore key their
#: own cache entries.
PROFILES: dict[str, AutomationProfile] = {p.name: p for p in (
    AutomationProfile(
        name="default",
        doc="Verus defaults: conservative triggers, E-matching, stock "
            "budgets.  Byte-identical to a profile-free run."),
    AutomationProfile(
        name="frugal",
        doc="Minimal automation for fast, predictable feedback: small "
            "round/instantiation/conflict budgets, a hard step budget, "
            "no ladder conjunct splitting.",
        max_rounds=24,
        max_instantiations=1500,
        sat_conflict_budget=100000,
        max_steps=200000,
        split_strategy="off"),
    AutomationProfile(
        name="aggressive",
        doc="Maximal E-matching automation: broad trigger selection over "
            "the full (unpruned) context with 4x round/instantiation/"
            "conflict budgets; warm contexts and one ladder retry by "
            "default.",
        trigger_policy=BROAD,
        max_rounds=240,
        max_instantiations=24000,
        sat_conflict_budget=1600000,
        prune_context=False,
        default_incremental=True,
        default_retries=1),
    AutomationProfile(
        name="nonlinear",
        doc="Nonlinear-arithmetic obligations: the nonlinear theory "
            "extension plus doubled budgets (mul/div/mod goals need "
            "longer saturation runs).",
        nonlinear=True,
        max_rounds=120,
        max_instantiations=12000,
        sat_conflict_budget=800000),
    AutomationProfile(
        name="bitvector",
        doc="Bit-manipulation obligations: conservative triggers with a "
            "large SAT conflict budget for bit-blasted cores and few "
            "quantifier rounds.",
        trigger_policy=CONSERVATIVE,
        max_rounds=30,
        max_instantiations=2000,
        sat_conflict_budget=1600000,
        default_triage=False),
    AutomationProfile(
        name="epr",
        doc="Finite-model quantifier reasoning: MBQI over the ground "
            "universe instead of syntactic E-matching, for goals whose "
            "triggers never match.",
        mbqi=True,
        mbqi_max_universe=9,
        default_triage=False),
)}

#: Deterministic candidate order for portfolio races: most-different
#: automation first (aggressive E-matching, then MBQI, then frugal),
#: so narrow race widths still cover the biggest strategy gaps.
RACE_ORDER = ("aggressive", "epr", "nonlinear", "bitvector", "frugal",
              "default")


def get_profile(name) -> AutomationProfile:
    """Look up a profile by name (an ``AutomationProfile`` passes
    through); raises :class:`UnknownProfileError` otherwise."""
    if isinstance(name, AutomationProfile):
        return name
    profile = PROFILES.get(name)
    if profile is None:
        raise UnknownProfileError(name)
    return profile


def profile_names() -> tuple:
    return tuple(PROFILES)


def portfolio_candidates(primary, width: int) -> tuple:
    """The race lineup for one stubborn obligation: the first ``width``
    profiles of :data:`RACE_ORDER` that differ from ``primary``.

    Deterministic by construction — candidate order (not completion
    order) breaks every tie, so serial and parallel races always elect
    the same winner.
    """
    primary_name = get_profile(primary).name
    if width <= 0:
        return ()
    picked = [n for n in RACE_ORDER if n != primary_name]
    return tuple(picked[:max(0, int(width))])
