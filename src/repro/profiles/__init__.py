"""Tunable automation profiles, portfolio racing, and the auto-tuner.

The public surface of the automation *dial* (see ``registry.py`` for
the detents, ``portfolio.py`` for the race semantics, ``tuner.py`` for
the learned per-obligation winners, and ``corpus.py`` for the seeded
stubborn-obligation fixtures).  Typical use goes through
:class:`repro.api.Session`::

    Session(profile="aggressive")            # one fixed detent
    Session(portfolio=2)                     # race 2 profiles on
                                             # stubborn obligations
    REPRO_PROFILE=frugal REPRO_PORTFOLIO=3   # same, from the env
"""

from .registry import (PROFILES, RACE_ORDER, AutomationProfile,
                       UnknownProfileError, escalate_config, get_profile,
                       portfolio_candidates, profile_names)
from .tuner import ProfileTuner, tuner_fingerprint

__all__ = ["AutomationProfile", "UnknownProfileError", "PROFILES",
           "RACE_ORDER", "get_profile", "profile_names",
           "portfolio_candidates", "escalate_config", "ProfileTuner",
           "tuner_fingerprint"]
