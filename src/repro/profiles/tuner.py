"""The learning auto-tuner: remember which profile won each race.

A portfolio race is pure discovery — it spends 2–3 solver runs finding
the profile that discharges a stubborn obligation.  The tuner makes
that spend a one-time cost: after a race, the winning profile name is
recorded under a *profile-independent* fingerprint of the obligation
(the canonical query text under the session's base configuration, with
an empty knob key, namespaced ``profile-tuner:<strategy>``), and on
later runs the scheduler redirects the obligation straight to the
recorded winner *before* computing its cache digest.  The redirected
digest is exactly the digest the winning race attempt stored its
verdict under, so a tuner-warm + cache-warm run replays the whole race
outcome with zero solver constructions and zero portfolio fan-out.

Storage mirrors :class:`~repro.vc.cache.ProofCache`: one JSON file per
fingerprint under ``root/<fp[:2]>/<fp>.json``, written atomically
(temp file + ``os.replace``) so parallel runs can share a tuner
directory; malformed entries are evicted at lookup.  The default
location is ``<proof-cache-dir>/profile_tuner`` (see
``Session.tuner``), but any directory works — tuner warmth and
proof-cache warmth are deliberately separable for benchmarking.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Sequence

from ..smt.fingerprint import obligation_digest
from .registry import PROFILES

__all__ = ["ProfileTuner", "tuner_fingerprint"]

#: Subdirectory of the proof-cache root used when no explicit tuner
#: directory is given.
DEFAULT_SUBDIR = "profile_tuner"

_SCHEMA = 1


def tuner_fingerprint(assertions: Sequence, strategy: str) -> str:
    """Profile-independent content address of one obligation.

    Uses the same canonical SMT-LIB2 rendering as the proof cache but
    an *empty* solver-knob key — the whole point is that every profile
    maps the obligation to the same tuner slot — and a namespaced
    strategy so tuner fingerprints can never collide with proof-cache
    digests of the same text.
    """
    return obligation_digest(assertions, {}, f"profile-tuner:{strategy}")


class ProfileTuner:
    """Per-fingerprint winner records plus hit/miss/record counters."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.records = 0
        self.evictions = 0

    @classmethod
    def for_cache_dir(cls, cache_dir: str) -> "ProfileTuner":
        return cls(os.path.join(cache_dir, DEFAULT_SUBDIR))

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2],
                            f"{fingerprint}.json")

    def lookup(self, fingerprint: str) -> Optional[str]:
        """The recorded winning profile name, or None.

        A record naming a profile this build no longer ships is evicted
        (the registry is the source of truth), as is any malformed or
        torn entry.
        """
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            profile = (entry.get("profile")
                       if isinstance(entry, dict) else None)
            if (entry.get("fingerprint") != fingerprint
                    or profile not in PROFILES):
                raise ValueError("malformed tuner entry")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError, UnicodeDecodeError, AttributeError):
            self.evictions += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return profile

    def record_win(self, fingerprint: str, profile: str,
                   status: str = "", wins: int = 1) -> None:
        """Persist (atomically, best-effort) that ``profile`` won the
        race for ``fingerprint``; an existing record for the same
        winner accumulates its win count."""
        path = self._path(fingerprint)
        prior = 0
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (isinstance(entry, dict)
                    and entry.get("profile") == profile):
                prior = int(entry.get("wins", 0))
        except (OSError, ValueError, UnicodeDecodeError, TypeError):
            prior = 0
        entry = {"schema": _SCHEMA, "fingerprint": fingerprint,
                 "profile": profile, "status": status,
                 "wins": prior + max(1, int(wins))}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.records += 1

    # ------------------------------------------------------------ reporting

    def entries(self) -> list[dict]:
        """All readable records (sorted by fingerprint; diagnostics and
        the server's ``profiles`` verb — not a hot path)."""
        out = []
        if not os.path.isdir(self.root):
            return out
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(shard_dir, name), "r",
                              encoding="utf-8") as fh:
                        entry = json.load(fh)
                except (OSError, ValueError, UnicodeDecodeError):
                    continue
                if isinstance(entry, dict):
                    out.append(entry)
        return out

    def stats(self) -> dict:
        """Counters plus per-profile win totals (JSON-able)."""
        by_profile: dict[str, int] = {}
        count = 0
        for entry in self.entries():
            profile = entry.get("profile")
            if isinstance(profile, str):
                count += 1
                by_profile[profile] = (by_profile.get(profile, 0)
                                       + int(entry.get("wins", 1) or 1))
        return {"root": self.root, "tuner_hits": self.hits,
                "tuner_misses": self.misses, "records": self.records,
                "evictions": self.evictions,
                "entries": count,
                "wins_by_profile": by_profile}

    def __repr__(self) -> str:
        return (f"<ProfileTuner {self.root}: {self.hits} hits, "
                f"{self.misses} misses, {self.records} records>")
