"""Portfolio racing: try several automation profiles on one obligation.

Generalizes the prover-portfolio prototype in
``baselines/pipelines.py`` (``CreusotVcGen.PORTFOLIO``) into a
first-class scheduler pass.  A *stubborn* obligation — one the
session's primary profile failed, timed out, or resource-outed on — is
re-discharged under 2–3 alternative profiles
(:func:`~repro.profiles.registry.portfolio_candidates`), and a PROVED
verdict from *any* profile is adopted: validity is profile-independent
(an UNSAT core under one knob set is a proof, full stop), so adoption
is sound even though a SAT answer under quantifiers may be spurious —
which is exactly why non-PROVED race outcomes are never adopted.

Determinism contract (pinned by ``tests/test_profiles.py``):

* the candidate lineup is a pure function of (primary profile, width);
* **every** candidate is attempted — no short-circuiting — so serial,
  ``jobs=N``, and cache-warm runs leave byte-identical proof-cache
  state;
* the winner is elected by *candidate order*, never completion order:
  the lowest-index PROVED attempt wins;
* deadline/killed attempts (wall-clock artifacts) can never win and
  are never stored.

Each attempt carries its own proof-cache digest (the candidate
profile's knobs change :func:`~repro.smt.fingerprint.solver_config_key`),
so cache-warm races replay without constructing a single solver.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..smt.fingerprint import obligation_digest, solver_config_key
from ..smt.solver import SmtSolver, SolverConfig
from ..vc.errors import PROVED, RESOURCE_OUT, status_from_solver
from .registry import get_profile, portfolio_candidates

__all__ = ["RaceAttempt", "plan_attempts", "solve_attempt",
           "elect_winner", "race_summary"]


class RaceAttempt:
    """One candidate profile's shot at a stubborn obligation."""

    __slots__ = ("profile", "config", "digest", "status", "stats",
                 "qbytes", "seconds", "from_cache")

    def __init__(self, profile: str, config: SolverConfig, digest: str):
        self.profile = profile
        self.config = config
        self.digest = digest
        self.status: Optional[str] = None
        self.stats: dict = {}
        self.qbytes = 0
        self.seconds = 0.0
        self.from_cache = False

    def record(self, status: str, stats: dict, qbytes: int,
               seconds: float, from_cache: bool = False) -> None:
        self.status = status
        self.stats = stats
        self.qbytes = qbytes
        self.seconds = seconds
        self.from_cache = from_cache

    def __repr__(self) -> str:
        return f"<RaceAttempt {self.profile}: {self.status}>"


def plan_attempts(primary, width: int, base_config: SolverConfig,
                  assertions: Sequence, strategy: str) -> list[RaceAttempt]:
    """The deterministic race lineup for one obligation.

    ``base_config`` is the *unprofiled* discharge config
    (``VcConfig.make_solver_config()``); each candidate layers its own
    knobs on top, so an attempt's digest is exactly the digest a
    session running that profile as primary would compute for the same
    assertion list — the tuner's replay path depends on this.
    """
    attempts = []
    for name in portfolio_candidates(primary, width):
        cfg = get_profile(name).apply_solver(base_config)
        digest = obligation_digest(assertions, solver_config_key(cfg),
                                   strategy)
        attempts.append(RaceAttempt(name, cfg, digest))
    return attempts


def solve_attempt(attempt: RaceAttempt, assertions: Sequence,
                  timeout: Optional[float] = None) -> None:
    """Discharge one attempt in-process with a fresh solver.

    Mirrors the scheduler's ``_run_fresh`` semantics: a soft-deadline
    kill reports a ``deadline_exceeded`` stat (the caller must neither
    adopt nor store it), budget exhaustion reports ``resource_out``.
    """
    import time
    t0 = time.perf_counter()
    solver = SmtSolver(attempt.config)
    for a in assertions:
        solver.add(a)
    verdict = solver.check(timeout=timeout)
    status = status_from_solver(verdict, solver)
    stats = solver.stats.snapshot()
    if solver.last_deadline_exceeded:
        stats["deadline_exceeded"] = 1
    elif status == RESOURCE_OUT:
        stats["resource_out"] = 1
    attempt.record(status, stats, solver.stats.query_bytes,
                   time.perf_counter() - t0)


def elect_winner(attempts: Sequence[RaceAttempt]) -> Optional[RaceAttempt]:
    """The lowest-index PROVED attempt, or None.

    Only PROVED results are adoptable (see module docstring), and
    wall-clock artifacts never win, so the election is a deterministic
    function of the attempts' solver verdicts alone.
    """
    for attempt in attempts:
        if (attempt.status == PROVED
                and not attempt.stats.get("deadline_exceeded")
                and not attempt.stats.get("job_timeouts")):
            return attempt
    return None


def race_summary(attempts: Sequence[RaceAttempt],
                 winner: Optional[RaceAttempt],
                 tuner_recorded: bool = False) -> dict:
    """The additive per-obligation ``portfolio`` stats/JSON payload."""
    return {"raced": [a.profile for a in attempts],
            "outcomes": {a.profile: a.status for a in attempts},
            "winner": winner.profile if winner is not None else None,
            "tuner_recorded": bool(tuner_recorded)}
