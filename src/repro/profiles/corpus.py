"""Seeded stubborn-obligation corpus for portfolio benchmarking.

Small modules constructed so that *no single* shipped profile
discharges all of their obligations, while a 2-wide portfolio race
proves every one.  They are the acceptance fixture for the
portfolio/tuner benchmarks (``benchmarks/test_profiles.py``) and the
determinism tests (``tests/test_profiles.py``).

The two gaps exploit the real incompleteness frontiers of the solver's
two quantifier engines:

* :func:`build_mbqi_gap_module` — a goal guarded by a quantifier whose
  explicit trigger (``shield(x)``) never has a ground occurrence, so
  syntactic E-matching can never instantiate it no matter how large
  the budgets (explicit triggers win over every policy, broad
  included).  MBQI (the ``epr`` profile) enumerates the ground
  universe — just ``0`` — and proves it instantly.  Every E-matching
  profile saturates and reports ``unknown``.

* :func:`build_universe_gap_module` — an instantiation chain
  ``q(0), ∀n {q(n)} 0 ≤ n < K → q(n+1) ⊢ q(K)``.  E-matching walks the
  chain (one instantiation per link, well inside every profile's
  budgets), but under MBQI the ground ``INT`` universe blows past
  ``mbqi_max_universe`` and the truncated enumeration is incomplete:
  the ``epr`` profile reports ``unknown`` while every E-matching
  profile proves the goal.

* :func:`build_stubborn_pair_module` — both gaps in one module, plus a
  sanity goal every profile proves: the module that *only* portfolio
  mode verifies (ISSUE 8's acceptance criterion).  Under a ``default``
  primary the mbqi-gap race is won by ``epr``; under an ``epr``
  primary the universe-gap race is won by ``aggressive`` (first
  E-matching candidate in the race order).

Every obligation here resolves in milliseconds-to-tenths — failures
are *structural* (trigger blindness, universe truncation), not budget
walks — so the corpus stays cheap enough for CI.
"""

from __future__ import annotations

from ..lang import BOOL, INT, Function, Module, Param, call, forall, lit, \
    proof_fn, var

__all__ = ["CHAIN_LENGTH", "build_mbqi_gap_module",
           "build_universe_gap_module", "build_stubborn_pair_module",
           "CORPUS_BUILDERS"]

#: Links in the universe-gap instantiation chain.  Anything larger
#: than ``mbqi_max_universe`` (9) defeats MBQI; 40 keeps the race
#: visibly non-trivial while solving in well under a second.
CHAIN_LENGTH = 40


def _add_mbqi_gap(mod: Module, suffix: str = "") -> None:
    p = Function(f"p{suffix}", "spec", [Param("x", INT)],
                 ("result", BOOL))
    shield = Function(f"shield{suffix}", "spec", [Param("x", INT)],
                      ("result", BOOL))
    mod.add(p)
    mod.add(shield)
    x = var("x", INT)
    # The explicit trigger wins over any policy (broad included), and
    # shield(x) never occurs ground — E-matching is structurally blind
    # to this quantifier.
    guarded = forall([("x", INT)], call(mod, p.name, x),
                     triggers=[[call(mod, shield.name, x)]])
    proof_fn(mod, f"needs_mbqi{suffix}", [],
             requires=[guarded],
             ensures=[call(mod, p.name, lit(0))],
             body=[])


def _add_universe_gap(mod: Module, suffix: str = "",
                      length: int = CHAIN_LENGTH) -> None:
    q = Function(f"q{suffix}", "spec", [Param("n", INT)],
                 ("result", BOOL))
    mod.add(q)
    n = var("n", INT)
    step = forall(
        [("n", INT)],
        (n >= 0).and_(n < lit(length)).implies(
            call(mod, q.name, n + 1)),
        triggers=[[call(mod, q.name, n)]])
    proof_fn(mod, f"needs_ematch{suffix}", [],
             requires=[call(mod, q.name, lit(0)), step],
             ensures=[call(mod, q.name, lit(length))],
             body=[])


def _add_sanity(mod: Module, suffix: str = "") -> None:
    r = Function(f"r{suffix}", "spec", [Param("x", INT)],
                 ("result", BOOL))
    mod.add(r)
    x = var("x", INT)
    easy = forall([("x", INT)], call(mod, r.name, x),
                  triggers=[[call(mod, r.name, x)]])
    proof_fn(mod, f"sanity{suffix}", [],
             requires=[easy],
             ensures=[call(mod, r.name, lit(7))],
             body=[])


def build_mbqi_gap_module() -> Module:
    """Provable by ``epr`` (MBQI) only; every E-matching profile
    saturates to ``unknown``."""
    mod = Module("profiles_mbqi_gap")
    _add_mbqi_gap(mod)
    return mod


def build_universe_gap_module() -> Module:
    """Provable by every E-matching profile; MBQI's truncated universe
    leaves ``epr`` at ``unknown``."""
    mod = Module("profiles_universe_gap")
    _add_universe_gap(mod)
    return mod


def build_stubborn_pair_module() -> Module:
    """The portfolio acceptance module: one obligation only MBQI
    proves, one MBQI cannot, one sanity goal — no single profile
    verifies the module, a 2-wide race does."""
    mod = Module("profiles_stubborn_pair")
    _add_mbqi_gap(mod)
    _add_universe_gap(mod)
    _add_sanity(mod)
    return mod


#: Name -> zero-argument builder, for scripts and the ablation sweep.
CORPUS_BUILDERS = {
    "mbqi_gap": build_mbqi_gap_module,
    "universe_gap": build_universe_gap_module,
    "stubborn_pair": build_stubborn_pair_module,
}
