"""The DPLL(T) core: SAT + EUF + LIA + quantifier instantiation.

Architecture (lazy SMT):

1. Assertions are preprocessed — NNF, skolemization of existentials,
   ground ITE lifting, div/mod axioms — and Tseitin-encoded into CNF whose
   atoms are theory literals (equalities, inequalities, boolean applications)
   and quantifier proxies.
2. The CDCL SAT core proposes a boolean model.
3. Theory solvers (congruence closure, simplex/branch-and-bound) check the
   proposed model; a theory conflict becomes a learned clause built from the
   theory's *explanation* and the loop continues.
4. Once theories agree, universal quantifiers active in the model are
   instantiated by E-matching on the e-graph (trigger policy is pluggable —
   the Verus-vs-Dafny axis of §3.1).  New instances extend the CNF.
5. When E-matching saturates: with MBQI enabled (EPR mode §3.2) the solver
   falls back to complete instantiation over the ground universe, which is a
   decision procedure for EPR; otherwise the result is UNKNOWN-on-sat.

Statistics exposed per check: conflicts, theory lemmas, instantiations,
query size in bytes — the measurable quantities behind Figures 7–9.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional

from . import terms as T
from ..resilience import faults as _faults
from ..resilience.faults import InjectedCrash
from .euf import EufConflict, EufSolver
from .lia import LiaConflict, LiaSolver, LiaUnknown, LinExpr
from .printer import query_size_bytes, term_to_str
from .quant import CONSERVATIVE, EMatcher, TriggerError, select_triggers
from .sat import SatSolver, lit as mk_lit, neg
from .sorts import BOOL, INT

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class _DeadlineReached(Exception):
    """Internal: the soft wall-clock deadline passed inside an inner
    loop (see :meth:`SmtSolver._poll_deadline`).  Caught in
    :meth:`SmtSolver.check`, never escapes the solver."""


def _no_poll() -> None:
    """Deadline poll stand-in for contexts that must not abort."""


class _ThreadConstructions(threading.local):
    """Per-thread count of SmtSolver instances built."""

    def __init__(self):
        self.count = 0


_thread_constructions = _ThreadConstructions()
_total_constructions = [0]
_constructions_lock = threading.Lock()


def solver_constructions() -> int:
    """SmtSolver instances built on the *calling thread* since it started.

    The verification daemon runs each request's scheduler inline on one
    worker thread, so diffing this counter around a request measures how
    many solvers that request actually paid for — the observable that
    distinguishes the delta/warm fast paths from a cold verify.
    """
    return _thread_constructions.count


def total_solver_constructions() -> int:
    """SmtSolver instances built process-wide (all threads)."""
    with _constructions_lock:
        return _total_constructions[0]


class Stats:
    """Counters for one solver instance (cumulative across checks).

    The same class doubles as the aggregate reported by the verification
    scheduler (:mod:`repro.vc.scheduler`): per-obligation snapshots are
    :meth:`merge`-d into one Stats, so solver counters, proof-cache
    hits/misses, and per-obligation wall-clock all surface through a
    single uniform :meth:`snapshot` shape.
    """

    def __init__(self):
        self.conflicts = 0
        self.theory_lemmas = 0
        self.instantiations = 0
        self.mbqi_instantiations = 0
        # Trigger selections that silently degraded (broad policy falling
        # through to conservative, or a brittle multi-pattern group) —
        # see repro.smt.quant.select_triggers.
        self.trigger_fallbacks = 0
        self.rounds = 0
        self.query_bytes = 0
        self.solve_seconds = 0.0
        # Incremental E-matching / fired-set / pruning counters (this is
        # where the profile-driven solver pass shows its work):
        # index-served match calls, match calls skipped entirely via the
        # new-term watermark, instantiations skipped by the fired-set
        # memo, context axioms dropped per obligation, and the query
        # bytes those dropped axioms would have cost.
        self.ematch_index_hits = 0
        self.ematch_rescans_avoided = 0
        self.fired_set_hits = 0
        self.pruned_axioms = 0
        self.query_bytes_saved = 0
        # Matches whose substitution is pairwise congruent (in the real
        # e-graph) to an already-asserted instance of the same quantifier:
        # the new instance is entailed by the old one plus the current
        # congruences, so it is skipped without being recorded anywhere —
        # if a later backtrack breaks the congruence, the match re-derives.
        self.congruent_skips = 0
        # Per-quantifier/per-trigger instantiation counts:
        # {quantifier label: {trigger label: count}}.  MBQI instantiations
        # are recorded under the reserved trigger label "<mbqi>" so the
        # profiler (repro.diag.profile) can separate the two mechanisms.
        self.inst_profile: dict = {}
        # Scheduler-level counters (always 0 on a bare solver instance).
        self.cache_hits = 0
        self.cache_misses = 0
        self.obligations = 0
        self.obligation_seconds = 0.0
        self.wall_seconds = 0.0
        # Resilience counters (repro.resilience + the scheduler's retry
        # escalation ladder); all stay 0 on fault-free default runs.
        self.resource_outs = 0        # RESOURCE_OUT verdicts observed
        self.pool_failures = 0        # worker deaths / pool breakage
        self.retries = 0              # escalation-ladder attempts
        self.retry_recoveries = 0     # obligations rescued by the ladder
        self.journal_skips = 0        # goals replayed from a run journal
        self.faults_injected = 0      # FaultPlan firings during the run
        # Warm solver-context pool (repro.server.warm / the scheduler's
        # solver_pool hook): groups served from a resident pre-warmed
        # context vs. groups that had to build their prefix from scratch.
        self.warm_pool_hits = 0
        self.warm_pool_misses = 0
        # Portfolio racing / auto-tuner (repro.profiles + the scheduler's
        # _portfolio_pass); all stay 0 when racing is off.
        self.portfolio_races = 0      # stubborn obligations raced
        self.portfolio_attempts = 0   # live (non-cache) race solves
        self.portfolio_wins = 0       # races that adopted a PROVED verdict
        self.tuner_hits = 0           # obligations redirected by the tuner
        self.tuner_misses = 0         # tuner lookups with no record
        # Static proving tier (repro.analysis.absint + the scheduler's
        # triage pass); all stay 0 when triage is off.
        self.static_proved = 0            # obligations discharged statically
        self.absint_fixpoint_iters = 0    # entailment fixpoint passes
        self.solver_constructions_avoided = 0  # solvers never built
        # Tiered proof cache (repro.cache.tiers): per-tier hit breakdown
        # and the network tier's fault-tolerance envelope.  All stay 0
        # with the flat disk cache (cache_hits/cache_misses above remain
        # the aggregate either way).
        self.mem_hits = 0             # lookups answered by the LRU tier
        self.disk_hits = 0            # lookups answered by the disk tier
        self.net_hits = 0             # lookups answered by a replica
        self.net_timeouts = 0         # request attempts that hit deadline
        self.net_retries = 0          # backoff-ladder steps taken
        self.breaker_trips = 0        # circuit breaker open transitions
        self.quarantined = 0          # entries rejected at a tier boundary

    def snapshot(self) -> dict:
        snap = dict(self.__dict__)
        snap["inst_profile"] = {q: dict(per)
                                for q, per in self.inst_profile.items()}
        return snap

    def merge(self, snap: dict) -> None:
        """Accumulate another snapshot's numeric counters into this one."""
        for k, v in snap.items():
            if k == "inst_profile":
                if isinstance(v, dict):
                    for q, per in v.items():
                        mine = self.inst_profile.setdefault(q, {})
                        for trig, n in per.items():
                            mine[trig] = mine.get(trig, 0) + n
                continue
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            setattr(self, k, getattr(self, k, 0) + v)

    @staticmethod
    def diff(before: dict, after: dict) -> dict:
        """Per-goal delta between two snapshots of one warm solver.

        Counters on a pooled solver are cumulative across goals; the warm
        scheduler snapshots around each check and reports the difference so
        per-obligation numbers stay comparable to fresh-solver runs.
        """
        out: dict = {}
        for k, v in after.items():
            if k == "inst_profile":
                delta: dict = {}
                prior = before.get(k) or {}
                for q, per in v.items():
                    pq = prior.get(q) or {}
                    for trig, n in per.items():
                        d = n - pq.get(trig, 0)
                        if d:
                            delta.setdefault(q, {})[trig] = d
                out[k] = delta
                continue
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            out[k] = v - before.get(k, 0)
        return out


class SolverConfig:
    """Tunables; defaults model Verus's settings."""

    def __init__(self,
                 trigger_policy: str = CONSERVATIVE,
                 max_rounds: int = 60,
                 max_instantiations: int = 6000,
                 mbqi: bool = False,
                 mbqi_max_universe: int = 9,
                 sat_conflict_budget: int = 400000,
                 nonlinear: bool = False,
                 incremental_ematch: bool = True,
                 max_steps: Optional[int] = None):
        self.trigger_policy = trigger_policy
        self.max_rounds = max_rounds
        self.max_instantiations = max_instantiations
        self.mbqi = mbqi
        self.mbqi_max_universe = mbqi_max_universe
        self.sat_conflict_budget = sat_conflict_budget
        self.nonlinear = nonlinear
        # Incremental E-matching: persistent apps-by-decl index, new-term
        # watermarks, and the fired-set memo.  False restores the naive
        # rescan-everything matcher (the differential-testing reference).
        self.incremental_ematch = incremental_ematch
        # Overall per-check step budget (rounds + theory conflicts +
        # instantiations).  Unlike the wall-clock deadline this is
        # machine-independent, so a RESOURCE_OUT verdict reproduces
        # everywhere.  None = unbounded (the per-dimension budgets above
        # still apply).
        self.max_steps = max_steps


class SmtSolver:
    """An SMT solver for quantified formulas over EUF + LIA."""

    def __init__(self, config: Optional[SolverConfig] = None,
                 incremental: bool = False):
        _thread_constructions.count += 1
        with _constructions_lock:
            _total_constructions[0] += 1
        self.config = config or SolverConfig()
        self.stats = Stats()
        self._assertions: list[T.Term] = []
        self._sat = SatSolver()
        self._atom_var: dict[T.Term, int] = {}
        self._var_atom: dict[int, T.Term] = {}
        self._quant_proxy: dict[T.Term, int] = {}   # FORALL term -> sat var
        self._proxy_quant: dict[int, T.Term] = {}
        self._instances_seen: set = set()
        # Substitution tuples actually asserted per quantifier, for the
        # congruent-instance skip (see Stats.congruent_skips).  Scoped
        # with push/pop like _instances_seen.
        self._inst_subs: dict = {}
        # Fired-set memo: (quant, trigger group, congruence-root tuple) ->
        # (class fingerprints, instance key).  A match whose root tuple and
        # class fingerprints are unchanged since it last fired is skipped
        # before canonicalization/substitution — the late _instances_seen
        # filter would have discarded it anyway.  Scoped with push/pop like
        # _instances_seen so popped instances are re-derivable.
        self._fired: dict = {}
        self._fired_key: Optional[tuple] = None   # transient probe state
        self._fired_fps: Optional[tuple] = None
        self._lemmas_seen: dict = {}   # lemma key -> assertion scope
        self._divmod_done: set = set()
        self._ite_cache: dict[T.Term, T.Term] = {}
        self._last_model: Optional[_TheoryModel] = None
        self._label_cache: dict = {}
        self._ground_terms: set[T.Term] = set()
        self._probed_none: dict[T.Term, tuple] = {}
        self._max_ground_size = 8
        self._guard_limit = 200
        # Incremental mode: push()/pop() assertion scopes with a persistent
        # root theory whose E-graph merges and simplex constraints survive
        # across checks.  Off by default — the fresh-solver code path is
        # byte-for-byte the non-incremental one.
        self.incremental = incremental
        self._frames: list[dict] = []
        self._root: Optional[_TheoryModel] = None
        self.last_deadline_exceeded = False
        # Set when the last check() returned UNKNOWN because a resource
        # budget (max_steps, max_instantiations, sat_conflict_budget,
        # max_rounds) ran out rather than because the problem is beyond
        # the solver.  The scheduler maps this to a RESOURCE_OUT verdict.
        self.last_resource_out = False
        # Soft-deadline polling state: single rounds over a large ground
        # universe (MBQI) can take seconds, so the hot inner loops poll
        # the wall clock (every 256th call) and abort to UNKNOWN instead
        # of waiting for the next between-rounds check.
        self._deadline: Optional[float] = None
        self._poll_tick = 0

    # ------------------------------------------------------------------ API

    def add(self, assertion: T.Term) -> None:
        """Assert a formula (conjoined with previous assertions)."""
        self._assertions.append(assertion)
        self.stats.query_bytes += query_size_bytes([assertion])
        root = self._preprocess(assertion)
        self._sat.add_clause([root])

    def push(self) -> None:
        """Open an assertion scope (incremental mode).

        The persistent root theory is *settled* first — every currently
        root-forced literal is fed into the shared E-graph/simplex — so all
        base reasoning sits below the checkpoint and is reused by every goal
        checked inside the scope.
        """
        self.incremental = True
        if self._root is None:
            self._root = _TheoryModel(self, None, set(), persistent=True)
        for _ in range(self.config.max_rounds):
            forced = self._sat.root_forced()
            if forced is None:
                break
            res = self._root.update(forced)
            if res != "restart":
                break
        self._sat.push()
        self._root.euf.push()
        self._root.lia.push()
        self._frames.append({
            "n_assertions": len(self._assertions),
            "instances": set(self._instances_seen),
            "inst_subs": {q: list(v) for q, v in self._inst_subs.items()},
            "fired": dict(self._fired),
            "lemmas": dict(self._lemmas_seen),
            "divmod": set(self._divmod_done),
            "ground": set(self._ground_terms),
            "probed": dict(self._probed_none),
            "max_ground": self._max_ground_size,
            "fed": set(self._root._fed_vars),
            "xprop": set(self._root._xprop_done),
        })

    def pop(self) -> None:
        """Close the innermost scope, dropping its assertions and state.

        Learned clauses whose derivation only used base-scope material are
        retained by the SAT core (see :meth:`SatSolver.pop`); the theory
        undo logs restore the E-graph and constraint stack exactly.
        """
        frame = self._frames.pop()
        self._sat.pop()
        kept_vars = self._sat.num_vars
        root = self._root
        assert root is not None
        root.euf.pop()
        root.lia.pop()
        root._fed_vars = frame["fed"]
        root._xprop_done = frame["xprop"]
        root._lia_model = None
        del self._assertions[frame["n_assertions"]:]
        self._instances_seen = frame["instances"]
        self._inst_subs = frame["inst_subs"]
        self._fired = frame["fired"]
        # Lemmas hoisted to a surviving scope keep their SAT clause across
        # the pop; keep their dedup keys too so they are not re-learned.
        target = self._sat.scope
        lemmas = frame["lemmas"]
        for k, s in self._lemmas_seen.items():
            if s <= target and k not in lemmas:
                lemmas[k] = s
        self._lemmas_seen = lemmas
        self._divmod_done = frame["divmod"]
        self._ground_terms = frame["ground"]
        self._probed_none = frame["probed"]
        self._max_ground_size = frame["max_ground"]
        for v in [v for v in self._var_atom if v >= kept_vars]:
            del self._atom_var[self._var_atom.pop(v)]
        for v in [v for v in self._proxy_quant if v >= kept_vars]:
            del self._quant_proxy[self._proxy_quant.pop(v)]
        self._last_model = None

    def check(self, timeout: Optional[float] = None) -> str:
        """Check satisfiability of the asserted formulas.

        ``timeout`` is a soft wall-clock deadline in seconds; when it passes,
        the check returns UNKNOWN and :attr:`last_deadline_exceeded` is set.
        """
        t0 = time.perf_counter()
        deadline = None if timeout is None else time.monotonic() + timeout
        self.last_deadline_exceeded = False
        self.last_resource_out = False
        spec = _faults.maybe_fault("solver.check")
        if spec is not None:
            if spec.kind == "crash":
                raise InjectedCrash("solver.check")
            # Injected resource exhaustion: the structured verdict a real
            # budget blowout would produce, with zero search work done.
            self.last_resource_out = True
            self.stats.solve_seconds += time.perf_counter() - t0
            return UNKNOWN
        # Freeze the instantiation-depth guard against the terms the QUERY
        # mentions; instances created during solving must not raise it
        # (that would let matching loops feed themselves).
        self._guard_limit = 60 + 2 * self._max_ground_size
        self._deadline = deadline
        try:
            return self._check_loop(deadline)
        except _DeadlineReached:
            self.last_deadline_exceeded = True
            return UNKNOWN
        finally:
            self._deadline = None
            self.stats.solve_seconds += time.perf_counter() - t0

    def _poll_deadline(self) -> None:
        """Cheap inner-loop deadline check: reads the clock every 256th
        call and raises :class:`_DeadlineReached` past the deadline.
        Only sound abort points may call this — aborting yields UNKNOWN,
        never a wrong verdict, but must not tear persistent state."""
        if self._deadline is None:
            return
        self._poll_tick += 1
        if self._poll_tick & 0xFF:
            return
        if time.monotonic() >= self._deadline:
            raise _DeadlineReached()

    def model_int(self, term: T.Term) -> Optional[int]:
        """Value of an int term in the last SAT model, if known."""
        if self._last_model is None:
            return None
        return self._last_model.int_value(term)

    def model_bool(self, atom: T.Term) -> Optional[bool]:
        if self._last_model is None:
            return None
        v = self._atom_var.get(atom)
        if v is None:
            return None
        model = self._last_model.sat_model
        if model is None:
            return None
        return model[v]

    @property
    def last_model(self) -> Optional["_TheoryModel"]:
        """The theory model behind the most recent SAT answer, if any."""
        return self._last_model

    def model_repr(self, term: T.Term) -> Optional[str]:
        """A readable value for ``term`` in the last SAT model.

        Integers come from the LIA model, booleans from the SAT
        assignment, and everything else from its EUF congruence class —
        either the constant the class contains or its smallest member
        (rendered symbolically).  Returns None when the model says
        nothing about the term.
        """
        m = self._last_model
        if m is None:
            return None
        if term.sort is INT:
            v = m.int_value(term)
            if v is not None:
                return str(v)
        if term.sort is BOOL:
            b = self.model_bool(term)
            if b is None and term in m.euf._repr:
                if m.euf.are_equal(term, T.TRUE):
                    b = True
                elif m.euf.are_equal(term, T.FALSE):
                    b = False
            if b is not None:
                return "true" if b else "false"
        if term in m.euf._repr:
            rep = m.euf.representative(term)
            if rep is not term:
                if rep.kind == T.INT_CONST:
                    return str(rep.payload)
                if rep.kind == T.BOOL_CONST:
                    return "true" if rep.payload else "false"
                return term_to_str(rep)
        return None

    # -------------------------------------------------------- preprocessing

    def _preprocess(self, formula: T.Term) -> int:
        """NNF + skolemize + lift + CNF; returns the root SAT literal."""
        # The ITE-lift cache is scoped to one assertion batch: sharing a
        # lift variable across `add` calls on a reused solver would let a
        # stale rewrite leak between batches, so each assertion re-lifts
        # with fresh variables (and fresh defining clauses).
        self._ite_cache.clear()
        nnf = self._nnf(formula, True, ())
        nnf = self._lift_ground(nnf)
        return self._tseitin(nnf)

    def _nnf(self, t: T.Term, positive: bool, univ_scope: tuple) -> T.Term:
        """Negation normal form with polarity-aware skolemization.

        ``univ_scope`` carries universally bound variables in scope, so that
        skolemized existentials become functions of them.
        """
        k = t.kind
        if k == T.NOT:
            return self._nnf(t.args[0], not positive, univ_scope)
        if k == T.AND:
            parts = [self._nnf(a, positive, univ_scope) for a in t.args]
            return T.And(*parts) if positive else T.Or(*parts)
        if k == T.OR:
            parts = [self._nnf(a, positive, univ_scope) for a in t.args]
            return T.Or(*parts) if positive else T.And(*parts)
        if k == T.IMPLIES:
            a = self._nnf(t.args[0], not positive, univ_scope)
            b = self._nnf(t.args[1], positive, univ_scope)
            return T.Or(a, b) if positive else T.And(a, b)
        if k == T.EQ and t.args[0].sort is BOOL:
            # iff: expand if quantifiers lurk inside, else keep as biimpl.
            a, b = t.args
            expanded = T.And(T.Implies(a, b), T.Implies(b, a)) if positive \
                else T.Or(T.And(a, T.Not(b)), T.And(b, T.Not(a)))
            return self._nnf(expanded, True, univ_scope)
        if k == T.DISTINCT:
            pairs = []
            args = t.args
            for i in range(len(args)):
                for j in range(i + 1, len(args)):
                    pairs.append(T.Ne(args[i], args[j]))
            return self._nnf(T.And(*pairs), positive, univ_scope)
        if k in (T.FORALL, T.EXISTS):
            is_univ = (k == T.FORALL) == positive
            if is_univ:
                body = self._nnf(t.body, positive, univ_scope + t.bound_vars)
                return T.ForAll(t.bound_vars, body, t.triggers or None)
            # Existential: skolemize.
            mapping = {}
            for v in t.bound_vars:
                if univ_scope:
                    decl = T.FuncDecl(T.fresh_name(f"sk_{v.payload}"),
                                      [u.sort for u in univ_scope], v.sort)
                    mapping[v] = decl(*univ_scope)
                else:
                    mapping[v] = T.Var(T.fresh_name(f"sk_{v.payload}"), v.sort)
            body = T.substitute(t.body, mapping)
            return self._nnf(body, positive, univ_scope)
        # Atom (or boolean leaf).
        return t if positive else T.Not(t)

    def _lift_ground(self, t: T.Term) -> T.Term:
        """Lift ground non-bool ITEs to fresh vars; add div/mod axioms.

        Quantifier bodies are left alone — instances get lifted when created.
        """
        if t.is_quant():
            return t
        if t.kind == T.ITE and t.sort is not BOOL:
            cached = self._ite_cache.get(t)
            if cached is not None:
                return cached
            c = self._lift_ground(t.args[0])
            a = self._lift_ground(t.args[1])
            b = self._lift_ground(t.args[2])
            v = T.Var(T.fresh_name("ite"), t.sort)
            self._ite_cache[t] = v
            self._sat.add_clause([self._tseitin(
                T.And(T.Implies(c, T.Eq(v, a)), T.Implies(T.Not(c), T.Eq(v, b))))])
            return v
        if t.kind in (T.IDIV, T.IMOD):
            a = self._lift_ground(t.args[0])
            b = self._lift_ground(t.args[1])
            t2 = T.Div(a, b) if t.kind == T.IDIV else T.Mod(a, b)
            self._add_divmod_axioms(a, b)
            return t2
        if not t.args:
            return t
        new_args = tuple(self._lift_ground(a) for a in t.args)
        if new_args == t.args:
            return t
        return T._rebuild(t, new_args)

    def _add_divmod_axioms(self, a: T.Term, b: T.Term) -> None:
        key = (a, b)
        if key in self._divmod_done:
            return
        self._divmod_done.add(key)
        q = T.Div(a, b)
        r = T.Mod(a, b)
        relation = T.Eq(a, T.Add(T.Mul(b, q), r))
        if b.kind == T.INT_CONST:
            if b.payload == 0:
                return  # division by zero: uninterpreted
            absb = T.IntVal(abs(b.payload))
            ax = T.And(relation, T.Le(T.IntVal(0), r), T.Lt(r, absb))
        else:
            pos = T.Implies(T.Ge(b, T.IntVal(1)),
                            T.And(relation, T.Le(T.IntVal(0), r), T.Lt(r, b)))
            neg_ = T.Implies(T.Le(b, T.IntVal(-1)),
                             T.And(relation, T.Le(T.IntVal(0), r),
                                   T.Lt(r, T.Neg(b))))
            ax = T.And(pos, neg_)
        self._sat.add_clause([self._tseitin(ax)])

    # ------------------------------------------------------------ CNF

    def _tseitin(self, t: T.Term) -> int:
        """Return a SAT literal equivalent to formula t, adding clauses."""
        k = t.kind
        if t is T.TRUE:
            return self._true_lit()
        if t is T.FALSE:
            return neg(self._true_lit())
        if k == T.NOT:
            return neg(self._tseitin(t.args[0]))
        if k == T.AND:
            lits = [self._tseitin(a) for a in t.args]
            o = mk_lit(self._sat.new_var())
            for l in lits:
                self._sat.add_clause([neg(o), l])
            self._sat.add_clause([o] + [neg(l) for l in lits])
            return o
        if k == T.OR:
            lits = [self._tseitin(a) for a in t.args]
            o = mk_lit(self._sat.new_var())
            for l in lits:
                self._sat.add_clause([o, neg(l)])
            self._sat.add_clause([neg(o)] + lits)
            return o
        if k == T.IMPLIES:
            return self._tseitin(T.Or(T.Not(t.args[0]), t.args[1]))
        if k == T.EQ and t.args[0].sort is BOOL:
            a = self._tseitin(t.args[0])
            b = self._tseitin(t.args[1])
            o = mk_lit(self._sat.new_var())
            self._sat.add_clause([neg(o), neg(a), b])
            self._sat.add_clause([neg(o), a, neg(b)])
            self._sat.add_clause([o, a, b])
            self._sat.add_clause([o, neg(a), neg(b)])
            return o
        if k == T.FORALL:
            return mk_lit(self._proxy_for(t))
        if k == T.EXISTS:
            # Residual existential (inside an instance body): skolemize now.
            skolem = self._nnf(t, True, ())
            return self._tseitin(self._lift_ground(skolem))
        # Theory atom.
        return mk_lit(self._atom(t))

    def _true_lit(self) -> int:
        atom = T.Var("$true", BOOL)
        v = self._atom_var.get(atom)
        if v is None:
            v = self._atom(atom)
            self._sat.add_clause([mk_lit(v)])
        return mk_lit(v)

    def _atom(self, t: T.Term) -> int:
        v = self._atom_var.get(t)
        if v is None:
            v = self._sat.new_var()
            self._atom_var[t] = v
            self._var_atom[v] = t
            self._register_ground(t)
        return v

    def _proxy_for(self, quant: T.Term) -> int:
        v = self._quant_proxy.get(quant)
        if v is None:
            v = self._sat.new_var()
            self._quant_proxy[quant] = v
            self._proxy_quant[v] = quant
        return v

    def _register_ground(self, t: T.Term) -> None:
        for sub in t.subterms():
            if not sub.is_quant():
                self._ground_terms.add(sub)
        size = t.size()
        if size > self._max_ground_size:
            self._max_ground_size = size

    # ------------------------------------------------------------ main loop

    def _check_loop(self, deadline: Optional[float] = None) -> str:
        config = self.config
        # Step accounting for the machine-independent max_steps budget:
        # a "step" is one round, one theory conflict, or one quantifier
        # instantiation, counted from the start of this check.
        steps_base = (self.stats.rounds + self.stats.conflicts
                      + self.stats.instantiations)
        # Each round tries the cheap *forced-prefix* reasoning first:
        # verification refutations are usually decided by unit-forced
        # literals (negated goal, assumptions, axiom instances), and every
        # learned lemma can force more of them.  Only when the forced
        # prefix saturates does the round fall through to boolean search.
        forced_saturated = False
        forced_streak = 0
        for _round in range(config.max_rounds * 2):
            if deadline is not None and time.monotonic() >= deadline:
                self.last_deadline_exceeded = True
                return UNKNOWN
            if config.max_steps is not None:
                steps = (self.stats.rounds + self.stats.conflicts
                         + self.stats.instantiations) - steps_base
                if steps >= config.max_steps:
                    self.last_resource_out = True
                    return UNKNOWN
            self.stats.rounds += 1
            if not forced_saturated and forced_streak < 3:
                progress = self._forced_round()
                if progress == UNSAT:
                    return UNSAT
                if progress:
                    forced_streak += 1
                    continue
                forced_saturated = True
            forced_streak = 0
            # Boolean model search for disjunctive reasoning.
            res = self._sat.solve(conflict_budget=config.sat_conflict_budget,
                                  deadline=deadline)
            if res is False:
                return UNSAT
            if res is None:
                if self._sat.budget_exhausted:
                    self.last_resource_out = True
                elif deadline is not None and time.monotonic() >= deadline:
                    self.last_deadline_exceeded = True
                return UNKNOWN
            model = self._sat.model()
            relevant = self._sat.relevant_literals()
            theory = _TheoryModel(self, model, relevant)
            conflict = theory.check()
            if conflict == "restart":
                forced_saturated = False
                continue  # new atoms/lemmas were introduced; re-solve
            if conflict is not None:
                self.stats.conflicts += 1
                self.stats.theory_lemmas += 1
                if not conflict or not self._learn(conflict):
                    return UNKNOWN  # degenerate/repeated lemma: give up
                forced_saturated = False  # the lemma may force new units
                continue
            self._last_model = theory
            # Quantifier instantiation (only quantifiers the model needs).
            active = [q for q, v in self._quant_proxy.items()
                      if mk_lit(v) in relevant]
            if not active:
                return SAT
            vars_before = self._sat.num_vars
            if config.mbqi:
                added, _complete = self._mbqi_round(theory, active)
                if added:
                    forced_saturated = False
                    continue
            else:
                added, scratch = self._ematch_round(theory, active)
                if added:
                    self._seed_phases(theory, scratch, vars_before)
                    forced_saturated = False
                    continue
            # The relevancy cover can starve the e-graph; before concluding,
            # retry against the full assignment.
            full_theory = _TheoryModel(self, model, None)
            conflict = full_theory.check()
            if conflict == "restart":
                forced_saturated = False
                continue
            if conflict is not None:
                self.stats.conflicts += 1
                self.stats.theory_lemmas += 1
                if not conflict or not self._learn(conflict):
                    return UNKNOWN
                forced_saturated = False
                continue
            full_active = [q for q, v in self._quant_proxy.items()
                           if model[v]]
            vars_before = self._sat.num_vars
            if config.mbqi:
                added, complete = self._mbqi_round(full_theory, full_active)
                if added:
                    forced_saturated = False
                    continue
                # SAT is only claimable when instantiation truly saturated;
                # a truncated universe or exhausted budget means UNKNOWN.
                if not complete:
                    self._flag_instantiation_budget()
                return SAT if complete else UNKNOWN
            added, scratch = self._ematch_round(full_theory, full_active)
            if added:
                self._seed_phases(full_theory, scratch, vars_before)
                forced_saturated = False
                continue
            self._flag_instantiation_budget()
            return UNKNOWN
        # Round budget exhausted: the search was cut off, not saturated.
        self.last_resource_out = True
        return UNKNOWN

    def _flag_instantiation_budget(self) -> None:
        """Mark the check resource-limited if E-matching/MBQI stalled
        because the instantiation budget ran out (as opposed to genuine
        saturation, which stays a plain UNKNOWN)."""
        if self.stats.instantiations >= self.config.max_instantiations:
            self.last_resource_out = True

    def _forced_round(self):
        """One round of forced-prefix reasoning.

        Returns UNSAT, True (progress made — instantiation or propagation),
        or False (the forced prefix is saturated).
        """
        config = self.config
        forced = self._sat.root_forced()
        if forced is None:
            return UNSAT
        if self.incremental:
            # Persistent root theory: E-graph merges and LIA constraints
            # from earlier rounds (and, under a warm scope, earlier goals)
            # carry forward; only newly forced literals are fed.
            if self._root is None:
                self._root = _TheoryModel(self, None, set(), persistent=True)
            theory = self._root
            conflict = theory.update(forced)
        else:
            theory = _TheoryModel(self, None, forced)
            conflict = theory.check()
        if conflict == "restart":
            return True
        if conflict is not None:
            # Every literal in the conflict is root-forced true, so the
            # conjunction of forced facts is theory-inconsistent.
            return UNSAT
        self._last_model = theory
        propagated = self._root_propagate(theory, forced)
        active = [q for q, v in self._quant_proxy.items()
                  if mk_lit(v) in forced]
        vars_before = self._sat.num_vars
        if config.mbqi:
            # EPR mode: complete instantiation over the (finite) ground
            # universe — E-matching on transitivity-style axioms would
            # generate new terms cubically, while the universe is fixed.
            added, _complete = self._mbqi_round(theory, active)
            scratch = None
        else:
            added, scratch = self._ematch_round(theory, active)
        if scratch is not None and added:
            self._seed_phases(theory, scratch, vars_before)
        return bool(added or propagated)

    def _root_propagate(self, theory: "_TheoryModel", forced: set[int],
                        max_tests: int = 5000) -> bool:
        """Root theory propagation.

        Any atom implied by the theory under root-forced literals is a
        logical consequence of the assertions, so asserting it as a unit
        clause is sound.  This is what lets guard atoms inside axiom
        instances fire the next link of a rewrite chain without a boolean
        search.
        """
        # Only atoms in clauses not yet satisfied at the root can unlock
        # further propagation; skip the rest.
        candidates: set[int] = set()
        for clause in self._sat._clauses:
            if any(self._sat.value(l) == 1 for l in clause.lits):
                continue
            for l in clause.lits:
                candidates.add(l >> 1)
        context_sig = (len(theory.lia._constraints), theory.euf.num_merges)
        added = False
        tests = 0
        for atom, var in list(self._atom_var.items()):
            if (var not in candidates or mk_lit(var) in forced
                    or mk_lit(var, False) in forced or tests >= max_tests):
                continue
            if self._probed_none.get(atom) == context_sig:
                continue  # theory context unchanged since the last probe
            self._poll_deadline()  # probes are pure: safe abort point
            tests += 1
            implied = theory.implied_atom(atom)
            if implied is not None:
                self._sat.add_clause([mk_lit(var, implied)])
                added = True
            else:
                self._probed_none[atom] = context_sig
        return added

    def _learn(self, conflict_lits: Iterable[int]) -> bool:
        clause = tuple(sorted(set(neg(l) for l in conflict_lits)))
        if clause in self._lemmas_seen:
            return False
        # Theory lemmas are T-valid (true in every model of the theory), so
        # they may be hoisted to the shallowest scope where all their atoms
        # exist — that is what lets them survive pop() in warm contexts.
        scope = self._sat.scope_for(clause) if self._frames else 0
        self._lemmas_seen[clause] = scope
        self._sat.add_clause(list(clause), scope=scope)
        return True

    # ------------------------------------------------------ instantiation

    MBQI_TRIGGER = "<mbqi>"

    def _term_label(self, t: T.Term, width: int = 120) -> str:
        """Stable readable label for a term (cached, truncated)."""
        label = self._label_cache.get(t)
        if label is None:
            label = term_to_str(t)
            if len(label) > width:
                label = label[: width - 3] + "..."
            self._label_cache[t] = label
        return label

    def _note_fallback(self, _kind: str) -> None:
        self.stats.trigger_fallbacks += 1

    def _record_instantiation(self, quant: T.Term, trigger_label: str
                              ) -> None:
        per = self.stats.inst_profile.setdefault(self._term_label(quant), {})
        per[trigger_label] = per.get(trigger_label, 0) + 1

    def _instantiate(self, quant: T.Term, sub: dict,
                     trigger_label: str = MBQI_TRIGGER) -> bool:
        key = (quant, tuple(sub.get(v) for v in quant.bound_vars))
        if key in self._instances_seen:
            return False
        if self.stats.instantiations >= self.config.max_instantiations:
            return False
        self._instances_seen.add(key)
        self._inst_subs.setdefault(quant, []).append(key[1])
        self.stats.instantiations += 1
        self._record_instantiation(quant, trigger_label)
        body = T.substitute(quant.body, sub)
        body = self._nnf(body, True, ())
        body = self._lift_ground(body)
        inst_lit = self._tseitin(body)
        proxy = mk_lit(self._proxy_for(quant))
        self._sat.add_clause([neg(proxy), inst_lit])
        return True

    def _ematch_round(self, theory: "_TheoryModel", active: list) -> bool:
        """Saturating E-matching over an *optimistic* e-graph.

        Instances of asserted universals are always sound to add, so the
        matcher may assume instance bodies hold: their equalities are merged
        into a scratch e-graph, letting one solver round absorb a whole
        chain of rewrites (select-of-store, concat indexing, ...) instead of
        one round per level.  The scratch graph never feeds conflicts — the
        real theory model does that on the next round.
        """
        match_euf = self._optimistic_euf(theory)
        incremental = self.config.incremental_ematch
        # One matcher for the whole round: its per-group watermarks carry
        # across passes, so each pass only rescans what changed.  (Naive
        # mode gets a fresh full-rescan matcher per pass, as before.)
        matcher = EMatcher(match_euf, incremental=incremental)
        added_any = False
        for _pass in range(16):  # noqa: B007
            if not incremental:
                matcher = EMatcher(match_euf, incremental=False)
            added = False
            for quant in active:
                try:
                    groups = select_triggers(quant,
                                             self.config.trigger_policy,
                                             on_fallback=self._note_fallback)
                except TriggerError:
                    continue  # MBQI may still handle it
                for group in groups:
                    trigger_label = self._label_cache.get(group)
                    if trigger_label is None:
                        trigger_label = "; ".join(self._term_label(p)
                                                  for p in group)
                        self._label_cache[group] = trigger_label
                    for sub in matcher.match_group(group, quant.bound_vars,
                                                   state_key=quant):
                        if incremental and self._fired_hit(
                                match_euf, quant, group, sub):
                            continue
                        full = {}
                        for v in quant.bound_vars:
                            t = sub.get(v)
                            if t is None:
                                break
                            # Canonicalize through the scratch e-graph: this
                            # is what stops matching loops like datatype
                            # inversion (mk(sel(x)) ~ x) from generating
                            # ever-deeper instances.  Pick the smallest
                            # class member as the canonical form.
                            if t in match_euf._repr:
                                members = match_euf.class_of(t)
                                if len(members) <= 64:
                                    t = min(members,
                                            key=lambda m: (m.size(),
                                                           m._hash))
                                else:
                                    t = match_euf.find(t)
                            full[v] = t
                        if len(full) != len(quant.bound_vars):
                            continue
                        # Generation guard: skip terms far deeper than
                        # anything the query itself mentions (stops
                        # matching loops without starving deep-heap
                        # workloads, whose own terms are large).
                        if any(t.size() > self._guard_limit
                               for t in full.values()):
                            if incremental:
                                self._fired_record(
                                    quant, ("guard", self._guard_limit))
                            continue
                        sub_key = tuple(full.get(v)
                                        for v in quant.bound_vars)
                        if incremental and self._congruent_seen(
                                theory.euf, quant, sub_key):
                            # Entailed by an asserted instance plus the
                            # current congruences.  Deliberately not
                            # recorded in _fired/_instances_seen: if a
                            # pop() breaks the congruence the rebuilt
                            # matcher re-derives this match.
                            self.stats.congruent_skips += 1
                            continue
                        if incremental:
                            self._fired_record(quant, (quant, sub_key))
                        if self._instantiate(quant, full, trigger_label):
                            added = True
                            body = T.substitute(quant.body, full)
                            self._optimistic_assert(match_euf, body)
            if not added:
                break
            added_any = True
            if self.stats.instantiations >= self.config.max_instantiations:
                break
        self.stats.ematch_index_hits += matcher.index_hits
        self.stats.ematch_rescans_avoided += matcher.rescans_avoided
        return added_any, match_euf

    def _congruent_seen(self, euf: EufSolver, quant: T.Term,
                        sub_key: tuple) -> bool:
        """True if an asserted instance of ``quant`` has a substitution
        pairwise equal to ``sub_key`` in the *real* e-graph (never the
        optimistic scratch graph — those merges are conjectural).  Such
        an instance body is entailed by the recorded one under the
        current congruences, so asserting it again adds nothing."""
        for prev in self._inst_subs.get(quant, ()):
            for a, b in zip(sub_key, prev):
                if a is not b and not euf.are_equal(a, b):
                    break
            else:
                return True
        return False

    def _fired_hit(self, match_euf: EufSolver, quant: T.Term, group: tuple,
                   sub: dict) -> bool:
        """Check the fired-set memo for this match; True means skip it.

        A hit requires (a) the same congruence-root tuple as when the
        instance fired, (b) unchanged class fingerprints — so the
        canonical substitution is provably the one recorded — and (c) the
        recorded instance still asserted in the current scope (or an
        unchanged generation-guard skip).  Side effect on miss: stores the
        pending key in ``_fired_key`` for :meth:`_fired_record`.
        """
        roots = []
        fps = []
        for v in quant.bound_vars:
            t = sub.get(v)
            if t is None:
                return False
            if t in match_euf._repr:
                root = match_euf.find(t)
                mem = match_euf._members[root]
                roots.append(root)
                fps.append((len(mem), mem[0], mem[-1]))
            else:
                roots.append(t)
                fps.append((0, t, t))
        fkey = (quant, group, tuple(roots))
        self._fired_key = fkey
        entry = self._fired.get(fkey)
        if entry is None or entry[0] != tuple(fps):
            self._fired_fps = tuple(fps)
            return False
        outcome = entry[1]
        if (outcome in self._instances_seen
                or outcome == ("guard", self._guard_limit)):
            self.stats.fired_set_hits += 1
            return True
        self._fired_fps = tuple(fps)
        return False

    def _fired_record(self, quant: T.Term, outcome) -> None:
        """Record the outcome for the match key probed by _fired_hit."""
        self._fired[self._fired_key] = (self._fired_fps, outcome)

    def _seed_phases(self, theory: "_TheoryModel", scratch: EufSolver,
                     vars_before: int) -> None:
        """Model-based phase initialization.

        Without this, CDCL guesses arbitrary polarities for the comparison
        atoms inside fresh axiom instances and the theory corrects them one
        learned lemma at a time; seeding phases from the previous theory
        model makes the next SAT model likely theory-consistent.  All atoms
        are (re-)seeded: phase saving would otherwise keep stale wrong
        guesses alive on older atoms.
        """
        for var in range(0, self._sat.num_vars):
            atom = self._var_atom.get(var)
            if atom is None:
                continue
            hint = self._eval_atom_hint(theory, scratch, atom)
            if hint is not None:
                self._sat._phase[var] = hint

    def _eval_atom_hint(self, theory: "_TheoryModel", scratch: EufSolver,
                        atom: T.Term) -> Optional[bool]:
        if atom.kind in (T.LE, T.LT):
            a = self._int_hint(theory, scratch, atom.args[0])
            b = self._int_hint(theory, scratch, atom.args[1])
            if a is None or b is None:
                return None
            return a <= b if atom.kind == T.LE else a < b
        if atom.kind == T.EQ:
            x, y = atom.args
            if x.sort is INT:
                a = self._int_hint(theory, scratch, x)
                b = self._int_hint(theory, scratch, y)
                if a is None or b is None:
                    return None
                return a == b
            if x in scratch._repr and y in scratch._repr:
                return scratch.are_equal(x, y)
        return None

    def _int_hint(self, theory: "_TheoryModel", scratch: EufSolver,
                  term: T.Term) -> Optional[int]:
        value = theory.int_value(term)
        if value is not None:
            return value
        if term in scratch._repr:
            for member in scratch.class_of(term):
                if member is term:
                    continue
                value = theory.int_value(member)
                if value is not None:
                    return value
        return None

    def _optimistic_euf(self, theory: "_TheoryModel") -> EufSolver:
        """Scratch e-graph seeded with the model's terms and equalities."""
        scratch = EufSolver()
        pairs = []
        for cls in theory.euf.classes():
            members = list(cls)
            for t in members:
                scratch.add_term(t)
            for other in members[1:]:
                pairs.append((members[0], other))
        for a, b in pairs:
            try:
                scratch.assert_eq(a, b, "model")
            except EufConflict:
                pass
        return scratch

    def _optimistic_assert(self, euf: EufSolver, body: T.Term) -> None:
        """Assume an instance body inside the scratch matching e-graph."""
        try:
            if body.kind == T.AND:
                for a in body.args:
                    self._optimistic_assert(euf, a)
            elif body.kind == T.IMPLIES:
                # Matching may assume the consequent: over-instantiation is
                # sound (and pruned by _instances_seen).
                euf.add_term(body.args[0]) if not body.args[0].is_quant() \
                    else None
                self._optimistic_assert(euf, body.args[1])
            elif body.kind == T.EQ and body.args[0].sort is not BOOL:
                euf.assert_eq(body.args[0], body.args[1], "inst")
            elif not body.is_quant():
                euf.add_term(body)
                euf.flush()
        except EufConflict:
            pass

    def _mbqi_round(self, theory: "_TheoryModel", active: list,
                    per_round_cap: int = 500) -> tuple[bool, bool]:
        """Complete instantiation over the ground universe (EPR decision).

        Returns (added_instances, complete).  ``complete`` is True only if
        every combination over the FULL universe was covered — a truncated
        domain or exhausted budget forfeits the right to claim SAT.
        Instantiates incrementally (``per_round_cap`` per call) so an UNSAT
        goal surfaces long before saturation.
        """
        universe: dict = {}
        for t in theory.euf.all_terms():
            if t.sort is BOOL:
                continue
            universe.setdefault(t.sort, set()).add(theory.euf.find(t))
        added = 0
        complete = True
        for quant in active:
            domains = []
            for v in quant.bound_vars:
                dom = universe.get(v.sort)
                if not dom:
                    witness = T.Var(T.fresh_name(f"w_{v.sort.name}"), v.sort)
                    dom = {witness}
                    universe[v.sort] = dom
                dom = sorted(dom, key=lambda t: t._hash)
                if len(dom) > self.config.mbqi_max_universe:
                    dom = dom[: self.config.mbqi_max_universe]
                    complete = False
                domains.append(dom)
            for combo in _product(domains):
                self._poll_deadline()  # instances already added stand
                if (self.stats.instantiations
                        >= self.config.max_instantiations):
                    return added > 0, False
                sub = dict(zip(quant.bound_vars, combo))
                if self._instantiate(quant, sub):
                    self.stats.mbqi_instantiations += 1
                    added += 1
                    if added >= per_round_cap:
                        return True, complete
        return added > 0, complete


def _product(domains: list) -> Iterable[tuple]:
    if not domains:
        yield ()
        return
    head, *rest = domains
    for h in head:
        for r in _product(rest):
            yield (h,) + r


# ---------------------------------------------------------------------------
# Theory integration
# ---------------------------------------------------------------------------

class _TheoryModel:
    """Checks one full SAT model against EUF + LIA; holds the theory state."""

    __slots__ = ("solver", "sat_model", "relevant", "euf", "lia",
                 "_lia_model", "persistent", "_fed_vars", "_xprop_done",
                 "_splits_added")

    def __init__(self, solver: SmtSolver, sat_model: list[bool],
                 relevant: Optional[set] = None, persistent: bool = False):
        self.solver = solver
        self.sat_model = sat_model
        self.relevant = relevant
        self.euf = EufSolver()
        self.lia = LiaSolver()
        self._lia_model: Optional[dict] = None
        # Persistent mode (incremental solving): the model survives across
        # rounds/goals; only literals not yet fed are asserted, and feeds
        # are transactional (theory push/commit, pop on conflict).
        self.persistent = persistent
        self._fed_vars: set[int] = set()
        self._xprop_done: set = set()

    def _atom_value(self, var: int) -> Optional[bool]:
        """Atom polarity to assert, or None when the model doesn't need it."""
        if self.relevant is None:
            return self.sat_model[var]
        if mk_lit(var) in self.relevant:
            return True
        if mk_lit(var, False) in self.relevant:
            return False
        return None

    def _pending_items(self) -> list[tuple]:
        """(atom, var, value) triples the model asserts and we haven't fed."""
        out = []
        fed = self._fed_vars
        for atom, var in list(self.solver._atom_var.items()):
            value = self._atom_value(var)
            if value is None:
                continue
            if self.persistent and var in fed:
                continue
            out.append((atom, var, value))
        return out

    def check(self, allow_interface_split: bool = True):
        """Return None (consistent), "restart" (new atoms/lemmas added),
        or a conflict as a set of true SAT literals."""
        self._splits_added = False
        items = self._pending_items()
        try:
            self._feed_euf(items)
            self._feed_lia(items)
        except EufConflict as cf:
            return self._flatten(cf.reasons)
        except LiaConflict as cf:
            return self._flatten(cf.reasons)
        except LiaUnknown:
            return None  # optimistic; verification treats sat as not-proved
        if self._splits_added:
            return "restart"
        if allow_interface_split and self._interface_split():
            return "restart"
        return None

    def update(self, forced: set[int]):
        """Incrementally re-check against a grown forced-literal set.

        Persistent-mode counterpart of :meth:`check`: feeds only new
        literals, inside a theory-level scope that is committed on success
        and rolled back on conflict so the shared state is never corrupted.
        """
        self.relevant = forced
        self._splits_added = False
        items = self._pending_items()
        xprop_before = set(self._xprop_done)
        self.euf.push()
        self.lia.push()
        try:
            self._feed_euf(items)
            self._feed_lia(items)
        except (EufConflict, LiaConflict) as cf:
            self.euf.pop()
            self.lia.pop()
            self._xprop_done = xprop_before
            self._lia_model = None
            return self._flatten(cf.reasons)
        except LiaUnknown:
            pass  # optimistic; keep the feeds
        self.euf.commit()
        self.lia.commit()
        self._fed_vars.update(var for _, var, _v in items)
        if self._splits_added:
            return "restart"
        if self._interface_split():
            return "restart"
        return None

    def _flatten(self, reasons: Iterable) -> set[int]:
        out: set[int] = set()
        for r in reasons:
            if isinstance(r, frozenset):
                out |= self._flatten(r)
            elif isinstance(r, int):
                out.add(r)
            # other tags ("_branch" etc.) carry no boolean content
        return out

    def _feed_euf(self, items: list[tuple]) -> None:
        euf = self.euf
        # Persistent (warm) theories feed transactionally and must not
        # be torn mid-update; throwaway models rebuild next round, so
        # aborting them on deadline is safe.
        poll = _no_poll if self.persistent else self.solver._poll_deadline
        for atom, var, value in items:
            poll()
            lit_true = mk_lit(var, value)
            if atom.kind == T.EQ:
                a, b = atom.args
                if value:
                    euf.assert_eq(a, b, lit_true)
                else:
                    euf.assert_neq(a, b, lit_true)
            elif atom.kind in (T.LE, T.LT):
                euf.add_term(atom.args[0])
                euf.add_term(atom.args[1])
                euf.flush()
            elif atom.kind in (T.VAR, T.APP) and atom.sort is BOOL:
                target = T.TRUE if value else T.FALSE
                euf.assert_eq(atom, target, lit_true)
            elif atom.kind in (T.BVULE, T.BVULT):
                euf.add_term(atom.args[0])
                euf.add_term(atom.args[1])
                euf.flush()
        euf.flush()  # settle congruences queued by late registrations

    def _feed_lia(self, items: list[tuple]) -> None:
        poll = _no_poll if self.persistent else self.solver._poll_deadline
        for atom, var, value in items:
            poll()
            lit_true = mk_lit(var, value)
            if atom.kind in (T.LE, T.LT):
                a = self._linearize(atom.args[0])
                b = self._linearize(atom.args[1])
                if atom.kind == T.LE:
                    if value:
                        self.lia.assert_le0(a - b, lit_true)
                    else:
                        self.lia.assert_lt0(b - a, lit_true)
                else:
                    if value:
                        self.lia.assert_lt0(a - b, lit_true)
                    else:
                        self.lia.assert_le0(b - a, lit_true)
            elif atom.kind == T.EQ and atom.args[0].sort is INT:
                if value:
                    a = self._linearize(atom.args[0])
                    b = self._linearize(atom.args[1])
                    self.lia.assert_eq0(a - b, lit_true)
                else:
                    self._request_diseq_split(atom)
        # Propagate EUF equalities between int-valued terms into LIA.
        persistent = self.persistent
        for cls in list(self.euf.classes()):
            ints = [t for t in cls if t.sort is INT]
            if len(ints) > 1:
                base = ints[0]
                base_e = self._linearize(base)
                for other in ints[1:]:
                    if persistent:
                        pair = frozenset((base, other))
                        if pair in self._xprop_done:
                            continue
                        self._xprop_done.add(pair)
                    reason = self.euf.explain(base, other)
                    self.lia.assert_eq0(base_e - self._linearize(other),
                                        frozenset(reason))
        self._lia_model = self.lia.check()

    def _request_diseq_split(self, eq_atom: T.Term) -> None:
        """A false int equality needs a < / > case-split lemma (added once)."""
        solver = self.solver
        a, b = eq_atom.args
        lemma = T.Or(eq_atom, T.Lt(a, b), T.Lt(b, a))
        key = ("diseq", eq_atom)
        if key not in solver._lemmas_seen:
            # The split clause goes through Tseitin, so it lives (and dies)
            # with the current scope; record the same scope on the key.
            solver._lemmas_seen[key] = solver._sat.scope
            solver._sat.add_clause([solver._tseitin(lemma)])
            self._splits_added = True

    def _linearize(self, t: T.Term) -> LinExpr:
        k = t.kind
        if k == T.INT_CONST:
            return LinExpr.constant(t.payload)
        if k == T.ADD:
            out = LinExpr()
            for a in t.args:
                out = out + self._linearize(a)
            return out
        if k == T.SUB:
            return self._linearize(t.args[0]) - self._linearize(t.args[1])
        if k == T.NEG:
            return self._linearize(t.args[0]).scale(-1)
        if k == T.MUL:
            a, b = t.args
            if a.kind == T.INT_CONST:
                return self._linearize(b).scale(a.payload)
            if b.kind == T.INT_CONST:
                return self._linearize(a).scale(b.payload)
            return LinExpr.var(t)  # nonlinear: opaque
        # VAR / APP / IDIV / IMOD / ITE leftovers: opaque LIA variable.
        return LinExpr.var(t)

    def _interface_split(self) -> bool:
        """Model-based theory combination.

        If the LIA model assigns equal values to two int terms that appear as
        arguments of uninterpreted functions but EUF lacks the equality,
        introduce the equality atom (plus the diseq case-split lemma) so CDCL
        can explore both arrangements.  Returns True if anything was added.
        """
        if self._lia_model is None:
            return False
        # positions: int term -> the (decl, argument-index) slots it feeds.
        # Only terms sharing a slot can profit from an equality (congruence);
        # all other pairs are noise that would burn restart rounds.
        positions: dict[T.Term, set] = {}
        for parent in self.euf.all_terms():
            if parent.kind == T.APP:
                for idx, a in enumerate(parent.args):
                    if a.sort is INT:
                        positions.setdefault(a, set()).add(
                            (parent.payload, idx))
        shared: dict[int, list[T.Term]] = {}
        for t in positions:
            v = self.int_value(t)
            if v is not None:
                shared.setdefault(v, []).append(t)
        added = 0
        for v, group in shared.items():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    a, b = group[i], group[j]
                    if not positions[a] & positions[b]:
                        continue
                    if not self.euf.are_equal(a, b):
                        atom = T.Eq(a, b)
                        if atom in self.solver._atom_var:
                            continue  # SAT already decides this atom
                        var = self.solver._atom(atom)
                        # Tautology registers the atom; CDCL picks a polarity.
                        self.solver._sat.add_clause(
                            [mk_lit(var), mk_lit(var, False)])
                        self._request_diseq_split(atom)
                        added += 1
                        if added >= 40:
                            return True
        return added > 0

    # -- implication queries (root theory propagation) -------------------------

    def implied_atom(self, atom: T.Term) -> Optional[bool]:
        """True/False when the asserted facts THEORY-IMPLY the atom."""
        k = atom.kind
        if k == T.EQ:
            a, b = atom.args
            if a in self.euf._repr and b in self.euf._repr \
                    and self.euf.are_equal(a, b):
                return True
            va = self.euf.value_of(a) if a in self.euf._repr else None
            vb = self.euf.value_of(b) if b in self.euf._repr else None
            if va is not None and vb is not None and va is not vb:
                return False
            if a.sort is INT:
                diff = self._linearize(a) - self._linearize(b)
                if self._lia_infeasible_with("ne", diff):
                    return True
                if self._lia_infeasible_with("eq", diff):
                    return False
            return None
        if k in (T.LE, T.LT):
            a = self._linearize(atom.args[0])
            b = self._linearize(atom.args[1])
            diff = a - b
            # Use the current model as a filter: if the model satisfies the
            # atom it cannot be implied-false, and vice versa — so only one
            # feasibility probe is ever needed.
            hint = self._eval_linexpr(diff)
            test_true = hint is None or hint <= (0 if k == T.LE else -1)
            test_false = hint is None or not test_true
            if k == T.LE:
                if test_true and self._lia_infeasible_with(
                        "lt", diff.scale(-1)):
                    return True
                if test_false and self._lia_infeasible_with("le", diff):
                    return False
            else:
                if test_true and self._lia_infeasible_with(
                        "le", diff.scale(-1)):
                    return True
                if test_false and self._lia_infeasible_with("lt", diff):
                    return False
            return None
        if k in (T.VAR, T.APP) and atom.sort is not INT:
            if atom in self.euf._repr:
                if self.euf.are_equal(atom, T.TRUE):
                    return True
                if self.euf.are_equal(atom, T.FALSE):
                    return False
        return None

    def _eval_linexpr(self, expr: LinExpr) -> Optional[int]:
        if self._lia_model is None:
            return None
        total = expr.const
        for v, c in expr.coeffs.items():
            val = self._lia_model.get(v)
            if val is None:
                return None
            total += c * val
        return int(total) if total.denominator == 1 else None

    def _lia_infeasible_with(self, kind: str, expr: LinExpr) -> bool:
        """Is (current LIA constraints + kind(expr)) infeasible?"""
        if kind == "ne":
            return (self.lia.lp_probe_infeasible("lt", expr)
                    and self.lia.lp_probe_infeasible("lt", expr.scale(-1)))
        return self.lia.lp_probe_infeasible(kind, expr)

    # -- model queries ---------------------------------------------------------

    def int_value(self, term: T.Term) -> Optional[int]:
        if self._lia_model is None:
            return None
        direct = self._lia_model.get(term)
        if direct is not None:
            return direct
        expr = self._linearize(term)
        total = expr.const
        for v, c in expr.coeffs.items():
            val = self._lia_model.get(v)
            if val is None:
                cv = self.euf.value_of(v) if v in self.euf._repr else None
                if cv is not None and cv.kind == T.INT_CONST:
                    val = cv.payload
                else:
                    return None
            total += c * val
        return int(total)
