"""Linear integer arithmetic solver: general simplex + branch-and-bound.

The solver decides conjunctions of linear constraints over integer variables.
It follows the Dutertre–de Moura *general simplex* architecture used by Z3:

* every distinct linear form gets a slack variable and a tableau row,
* asserted constraints become bounds on variables (each carrying an opaque
  *reason* tag, typically a SAT literal),
* a pivoting loop repairs bound violations; when a violated row admits no
  pivot, the bounds of that row form a conflict explanation,
* rational solutions are repaired to integers by branch-and-bound, with a
  GCD pre-test on rows to catch common integer infeasibilities early.

Variables are arbitrary hashable atoms (the DPLL(T) layer uses Terms).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Hashable, Optional

ZERO = Fraction(0)


class LiaConflict(Exception):
    """The asserted constraints are unsatisfiable; `reasons` explains why."""

    def __init__(self, reasons: frozenset):
        super().__init__(f"LIA conflict from {len(reasons)} reasons")
        self.reasons = reasons


class LiaUnknown(Exception):
    """Branch-and-bound exceeded its budget; satisfiability undetermined."""


class LinExpr:
    """A linear expression: coefficient map over atoms plus a constant."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[dict] = None, const=0):
        self.coeffs: dict[Hashable, Fraction] = {}
        if coeffs:
            for v, c in coeffs.items():
                if type(c) is not Fraction:
                    c = Fraction(c)
                if c:
                    self.coeffs[v] = c
        self.const = const if type(const) is Fraction else Fraction(const)

    @classmethod
    def var(cls, v: Hashable) -> "LinExpr":
        return cls({v: 1})

    @classmethod
    def constant(cls, c) -> "LinExpr":
        return cls(None, c)

    def __add__(self, other: "LinExpr") -> "LinExpr":
        out = dict(self.coeffs)
        for v, c in other.coeffs.items():
            nc = out.get(v, ZERO) + c
            if nc:
                out[v] = nc
            else:
                out.pop(v, None)
        return LinExpr(out, self.const + other.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scale(-1)

    def scale(self, k) -> "LinExpr":
        k = Fraction(k)
        if not k:
            return LinExpr()
        return LinExpr({v: c * k for v, c in self.coeffs.items()}, self.const * k)

    def is_constant(self) -> bool:
        return not self.coeffs

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" for v, c in self.coeffs.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


class _Bound:
    __slots__ = ("value", "reason")

    def __init__(self, value: Fraction, reason: Hashable):
        self.value = value
        self.reason = reason


class Simplex:
    """General simplex over rationals with per-bound reasons."""

    __slots__ = ("_rows", "_basic", "_nonbasic", "_lower", "_upper",
                 "_value", "_slack_of_form", "_slack_counter", "_order",
                 "num_pivots", "_snapshots")

    def __init__(self):
        # Tableau: basic var -> {nonbasic var: coeff}. Invariant: basic ==
        # sum(coeff * nonbasic).
        self._rows: dict[Hashable, dict[Hashable, Fraction]] = {}
        self._basic: set = set()
        self._nonbasic: set = set()
        self._lower: dict[Hashable, _Bound] = {}
        self._upper: dict[Hashable, _Bound] = {}
        self._value: dict[Hashable, Fraction] = {}
        self._slack_of_form: dict[tuple, Hashable] = {}
        self._slack_counter = 0
        self._order: dict[Hashable, int] = {}
        self.num_pivots = 0
        self._snapshots: list[tuple[dict, dict]] = []

    # -- snapshots ----------------------------------------------------------

    def push(self) -> None:
        """Snapshot the bound maps (the tableau itself only ever grows and
        stays equivalent under pivoting, so bounds are the whole logical
        state)."""
        self._snapshots.append((dict(self._lower), dict(self._upper)))

    def pop(self) -> None:
        """Restore the bound maps from the matching push.

        Variable values are left as repaired — they satisfy every row
        identity, and the next check() re-repairs any bound violations.
        """
        self._lower, self._upper = self._snapshots.pop()

    # -- construction -------------------------------------------------------

    def _key(self, v: Hashable) -> int:
        """Stable per-solver ordering key (cheap, unlike repr on big terms)."""
        k = self._order.get(v)
        if k is None:
            k = len(self._order)
            self._order[v] = k
        return k

    def _ensure_var(self, v: Hashable) -> None:
        if v not in self._value:
            self._value[v] = ZERO
            self._nonbasic.add(v)
            self._key(v)

    def _slack_for(self, expr: LinExpr) -> Hashable:
        """Return a variable equal to expr.coeffs (constant excluded)."""
        for v in expr.coeffs:
            self._key(v)
        items = tuple(sorted(expr.coeffs.items(), key=lambda kv: self._key(kv[0])))
        if len(items) == 1 and items[0][1] == 1:
            v = items[0][0]
            self._ensure_var(v)
            return v
        existing = self._slack_of_form.get(items)
        if existing is not None:
            return existing
        self._slack_counter += 1
        s = ("_slack", self._slack_counter)
        self._key(s)
        for v in expr.coeffs:
            self._ensure_var(v)
        # Row in terms of current nonbasic/basic vars: substitute basic vars.
        row: dict[Hashable, Fraction] = {}
        for v, c in expr.coeffs.items():
            if v in self._basic:
                for w, cw in self._rows[v].items():
                    nc = row.get(w, ZERO) + c * cw
                    if nc:
                        row[w] = nc
                    else:
                        row.pop(w, None)
            else:
                nc = row.get(v, ZERO) + c
                if nc:
                    row[v] = nc
                else:
                    row.pop(v, None)
        self._rows[s] = row
        self._basic.add(s)
        self._value[s] = sum((self._value[v] * c for v, c in row.items()), ZERO)
        self._slack_of_form[items] = s
        return s

    # -- bound assertion -------------------------------------------------------

    def assert_upper(self, expr: LinExpr, reason: Hashable) -> None:
        """Assert expr <= 0, i.e. (coeffs part) <= -const."""
        s = self._slack_for(expr)
        bound = -expr.const
        cur = self._upper.get(s)
        if cur is not None and cur.value <= bound:
            return
        low = self._lower.get(s)
        if low is not None and low.value > bound:
            raise LiaConflict(frozenset([reason, low.reason]))
        self._upper[s] = _Bound(bound, reason)
        if s in self._nonbasic and self._value[s] > bound:
            self._update_nonbasic(s, bound)

    def assert_lower(self, expr: LinExpr, reason: Hashable) -> None:
        """Assert expr >= 0, i.e. (coeffs part) >= -const."""
        s = self._slack_for(expr)
        bound = -expr.const
        cur = self._lower.get(s)
        if cur is not None and cur.value >= bound:
            return
        up = self._upper.get(s)
        if up is not None and up.value < bound:
            raise LiaConflict(frozenset([reason, up.reason]))
        self._lower[s] = _Bound(bound, reason)
        if s in self._nonbasic and self._value[s] < bound:
            self._update_nonbasic(s, bound)

    def _update_nonbasic(self, v: Hashable, new_val: Fraction) -> None:
        delta = new_val - self._value[v]
        self._value[v] = new_val
        for b in self._basic:
            c = self._rows[b].get(v)
            if c:
                self._value[b] += c * delta

    # -- pivoting check --------------------------------------------------------

    def check(self, max_pivots: int = 20000) -> dict:
        """Repair all bound violations; return the rational model.

        Raises LiaConflict if infeasible, LiaUnknown on pivot budget blowout.
        """
        pivots = 0
        while True:
            violated = None
            direction = 0
            for b in sorted(self._basic, key=self._key):  # Bland-ish: stable order
                val = self._value[b]
                lo = self._lower.get(b)
                if lo is not None and val < lo.value:
                    violated, direction = b, +1
                    break
                up = self._upper.get(b)
                if up is not None and val > up.value:
                    violated, direction = b, -1
                    break
            if violated is None:
                return dict(self._value)
            pivots += 1
            self.num_pivots += 1
            if pivots > max_pivots:
                raise LiaUnknown("pivot budget exceeded")
            self._repair(violated, direction)

    def _repair(self, b: Hashable, direction: int) -> None:
        row = self._rows[b]
        target = (self._lower[b].value if direction > 0
                  else self._upper[b].value)
        for v in sorted(row, key=self._key):
            c = row[v]
            # Increasing b requires: c>0 -> increase v (below upper), or
            # c<0 -> decrease v (above lower); symmetric for decreasing.
            if direction > 0:
                can = (c > 0 and self._can_increase(v)) or (c < 0 and self._can_decrease(v))
            else:
                can = (c > 0 and self._can_decrease(v)) or (c < 0 and self._can_increase(v))
            if can:
                self._pivot(b, v)
                self._set_basic_to_bound(v, b, target)
                return
        # No pivot possible: conflict from this row's binding bounds.
        reasons = set()
        reasons.add(self._lower[b].reason if direction > 0 else self._upper[b].reason)
        for v, c in row.items():
            if direction > 0:
                bound = self._upper.get(v) if c > 0 else self._lower.get(v)
            else:
                bound = self._lower.get(v) if c > 0 else self._upper.get(v)
            if bound is not None:
                reasons.add(bound.reason)
        raise LiaConflict(frozenset(reasons))

    def _can_increase(self, v: Hashable) -> bool:
        up = self._upper.get(v)
        return up is None or self._value[v] < up.value

    def _can_decrease(self, v: Hashable) -> bool:
        lo = self._lower.get(v)
        return lo is None or self._value[v] > lo.value

    def _pivot(self, b: Hashable, nb: Hashable) -> None:
        """Swap basic b with nonbasic nb."""
        row = self._rows.pop(b)
        c = row.pop(nb)
        # b = c*nb + rest  =>  nb = (b - rest)/c
        new_row = {b: Fraction(1) / c}
        for v, cv in row.items():
            new_row[v] = -cv / c
        self._basic.remove(b)
        self._nonbasic.add(b)
        self._nonbasic.remove(nb)
        self._basic.add(nb)
        self._rows[nb] = new_row
        # Substitute nb out of all other rows.
        for ob, orow in self._rows.items():
            if ob is nb:
                continue
            cv = orow.pop(nb, None)
            if cv:
                for v, c2 in new_row.items():
                    nc = orow.get(v, ZERO) + cv * c2
                    if nc:
                        orow[v] = nc
                    else:
                        orow.pop(v, None)

    def _set_basic_to_bound(self, new_basic: Hashable, now_nonbasic: Hashable,
                            target: Fraction) -> None:
        # After the pivot the system is algebraically unchanged, so current
        # values still satisfy every row; only the delta of the (formerly
        # basic, now nonbasic) variable needs propagating.
        delta = target - self._value[now_nonbasic]
        if not delta:
            return
        self._value[now_nonbasic] = target
        value = self._value
        for b, row in self._rows.items():
            c = row.get(now_nonbasic)
            if c:
                value[b] += c * delta


class LiaSolver:
    """Integer-feasibility solver: simplex + GCD tests + branch-and-bound."""

    __slots__ = ("_constraints", "_int_vars", "branch_budget",
                 "num_branches", "_root_simplex", "last_model", "_frames",
                 "_dirty", "_checked_upto", "_gcd_upto")

    def __init__(self, branch_budget: int = 400):
        self._constraints: list[tuple[str, LinExpr, Hashable]] = []
        self._int_vars: dict = {}  # insertion-ordered set
        self.branch_budget = branch_budget
        self.num_branches = 0
        self._root_simplex: Optional[Simplex] = None
        # Most recent satisfying integer model (model export for
        # counterexample diagnostics); None until check() succeeds.
        self.last_model: Optional[dict] = None
        # Incremental scopes: (num constraints, num int vars) marks.
        self._frames: list[tuple[int, int]] = []
        # check() memo: False when the constraint set is unchanged since
        # the last successful check, whose model is then still valid.
        # Persistent theory contexts re-check after every literal feed, and
        # most feeds assert nothing LIA-relevant — without this memo every
        # such call rebuilds and re-solves the full tableau from scratch.
        self._dirty = True
        # Constraints already covered by last_model; the check() fast path
        # only has to evaluate the suffix asserted since.
        self._checked_upto = 0
        # Constraints already covered by the GCD pre-test; old constraints
        # cannot newly fail it, so each check only scans the fresh suffix.
        self._gcd_upto = 0

    # -- incremental scopes -------------------------------------------------

    def push(self) -> None:
        """Open a scope; constraints asserted after this can be popped."""
        self._frames.append((len(self._constraints), len(self._int_vars)))

    def pop(self, n: int = 1) -> None:
        """Drop every constraint asserted in the ``n`` innermost scopes."""
        target = len(self._frames) - n
        n_cons, n_vars = self._frames[target]
        del self._frames[target:]
        del self._constraints[n_cons:]
        if n_vars < len(self._int_vars):
            for v in list(self._int_vars)[n_vars:]:
                del self._int_vars[v]
        self._root_simplex = None
        self.last_model = None
        self._dirty = True
        self._checked_upto = 0
        self._gcd_upto = min(self._gcd_upto, len(self._constraints))

    def commit(self) -> None:
        """Close the innermost scope, keeping its constraints."""
        self._frames.pop()

    def _note_vars(self, expr: LinExpr) -> None:
        for v in expr.coeffs:
            self._int_vars.setdefault(v)

    def assert_le0(self, expr: LinExpr, reason: Hashable) -> None:
        """expr <= 0."""
        self._constraints.append(("le", expr, reason))
        self._note_vars(expr)
        self._apply_root("le", expr, reason)
        self._dirty = True

    def assert_ge0(self, expr: LinExpr, reason: Hashable) -> None:
        self._constraints.append(("ge", expr, reason))
        self._note_vars(expr)
        self._apply_root("ge", expr, reason)
        self._dirty = True

    def assert_eq0(self, expr: LinExpr, reason: Hashable) -> None:
        self._constraints.append(("eq", expr, reason))
        self._note_vars(expr)
        self._apply_root("eq", expr, reason)
        self._dirty = True

    def assert_lt0(self, expr: LinExpr, reason: Hashable) -> None:
        """expr < 0; over integers this is expr + 1 <= 0 after scaling."""
        scaled = _integerize(expr) + LinExpr.constant(1)
        self._constraints.append(("le", scaled, reason))
        self._note_vars(expr)
        self._apply_root("le", scaled, reason)
        self._dirty = True

    def _apply_root(self, kind: str, expr: LinExpr, reason: Hashable) -> None:
        """Fold a new constraint into the persistent root tableau, if alive.

        Keeping the tableau in sync with the constraint list means check()
        and lp_probe never rebuild it mid-scope: each new bound costs only
        the slack-row addition and local value repair.  A bound clash is not
        reported here — asserts never raised historically — the tableau is
        simply dropped and the conflict rediscovered by the next check().
        """
        simplex = self._root_simplex
        if simplex is None or expr.is_constant():
            return
        try:
            if kind == "le":
                simplex.assert_upper(expr, reason)
            elif kind == "ge":
                simplex.assert_lower(expr, reason)
            else:
                simplex.assert_upper(expr, reason)
                simplex.assert_lower(expr, reason)
        except LiaConflict:
            self._root_simplex = None

    # -- solving ------------------------------------------------------------

    def check(self) -> dict:
        """Return an integer model, or raise LiaConflict / LiaUnknown."""
        if not self._dirty and self.last_model is not None:
            return self.last_model
        if self.last_model is not None and self._model_extends():
            self._dirty = False
            return self.last_model
        for kind, expr, reason in self._constraints:
            if expr.is_constant():
                val = expr.const
                sat = (val <= 0 if kind == "le" else
                       val >= 0 if kind == "ge" else val == 0)
                if not sat:
                    raise LiaConflict(frozenset([reason]))
        self._gcd_tests()
        budget = [self.branch_budget]
        try:
            simplex = self._root()
            self.last_model = self._solve_on(simplex, budget, depth=0)
        except LiaUnknown:
            # Feasibility unresolved: keep the tableau only if its bound
            # state is trustworthy (it is — push/pop restored it), but a
            # budget blowout mid-branch leaves values far from feasible;
            # rebuilding is cheaper than repairing a pathological state.
            self._root_simplex = None
            raise
        self._checked_upto = len(self._constraints)
        self._dirty = False
        return self.last_model

    def _model_extends(self) -> bool:
        """Does the last model already satisfy the constraints asserted
        since it was computed?  New variables default to 0; on success the
        model is extended in place.  This is the incremental fast path:
        most feeds from the DPLL(T) loop assert bounds the current model
        already meets, and skipping the rebuild turns those checks into a
        linear evaluation of the new suffix."""
        model = self.last_model
        ext: dict = {}
        for kind, expr, _reason in self._constraints[self._checked_upto:]:
            total = expr.const
            for v, c in expr.coeffs.items():
                val = model.get(v)
                if val is None:
                    val = ext.setdefault(v, 0)
                total += c * val
            ok = (total <= 0 if kind == "le" else
                  total >= 0 if kind == "ge" else total == 0)
            if not ok:
                return False
        if ext:
            model.update(ext)
        self._checked_upto = len(self._constraints)
        return True

    def model_value(self, v: Hashable) -> Optional[int]:
        """Value of one variable in the last satisfying model, if any."""
        if self.last_model is None:
            return None
        return self.last_model.get(v)

    def _gcd_tests(self) -> None:
        for kind, expr, reason in self._constraints[self._gcd_upto:]:
            if kind != "eq" or not expr.coeffs:
                continue
            e = _integerize(expr)
            g = 0
            for c in e.coeffs.values():
                g = math.gcd(g, abs(int(c)))
            if g > 1 and int(e.const) % g != 0:
                raise LiaConflict(frozenset([reason]))
        self._gcd_upto = len(self._constraints)

    def _root(self) -> Simplex:
        """Build (or return) the persistent root tableau.

        The tableau holds every non-constant asserted constraint as a bound
        and is kept in sync by :meth:`_apply_root`; it is only rebuilt after
        a pop or an assert-time bound clash.  The initial ``check()`` leaves
        it feasibility-repaired, so later probes and solves start from a
        near-feasible state.  Raises LiaConflict / LiaUnknown (and caches
        nothing) when the base constraints cannot be repaired.
        """
        simplex = self._root_simplex
        if simplex is None:
            simplex = Simplex()
            for c_kind, c_expr, reason in self._constraints:
                if c_expr.is_constant():
                    continue
                if c_kind == "le":
                    simplex.assert_upper(c_expr, reason)
                elif c_kind == "ge":
                    simplex.assert_lower(c_expr, reason)
                else:
                    simplex.assert_upper(c_expr, reason)
                    simplex.assert_lower(c_expr, reason)
            simplex.check()
            self._root_simplex = simplex
        return simplex

    def lp_probe_infeasible(self, kind: str, expr: LinExpr) -> bool:
        """Is (constraints + kind(expr)) LP-infeasible?  Sound for ILP.

        Uses the persistent root tableau with bound save/restore, so a probe
        costs only the pivots needed to repair the new bound.  ``kind`` is
        one of ``le`` (expr<=0), ``lt`` (expr<0), ``eq`` (expr==0).
        Strict constraints are integer-tightened to ``<= -1``, so most
        integrality-based implications are preserved.
        """
        try:
            simplex = self._root()
        except LiaConflict:
            return True  # base constraints already infeasible
        except LiaUnknown:
            return False
        simplex.push()
        try:
            if kind == "lt":
                expr = _integerize(expr) + LinExpr.constant(1)
                kind = "le"
            if kind == "le":
                simplex.assert_upper(expr, "_probe")
            elif kind == "eq":
                simplex.assert_upper(expr, "_probe")
                simplex.assert_lower(expr, "_probe")
            else:
                raise ValueError(kind)
            simplex.check(max_pivots=4000)
            return False
        except LiaConflict:
            return True
        except LiaUnknown:
            return False
        finally:
            simplex.pop()

    def _solve_on(self, simplex: Simplex, budget, depth) -> dict:
        """Branch-and-bound over the shared tableau.

        Branch bounds are pushed and popped on ``simplex`` rather than
        rebuilding a fresh tableau per node — a branch bound is a single-var
        bound (no new slack rows), so each node costs only the pivots needed
        to repair it from the parent's feasible state.
        """
        model = simplex.check()
        # Find an integer-constrained var with fractional value.
        frac_var = None
        for v in self._int_vars:
            val = model.get(v, ZERO)
            if val.denominator != 1:
                frac_var = v
                break
        if frac_var is None:
            return {v: int(model.get(v, ZERO)) for v in self._int_vars}
        # Branch.
        budget[0] -= 1
        self.num_branches += 1
        if budget[0] <= 0 or depth > 60:
            raise LiaUnknown("branch budget exceeded")
        val = model[frac_var]
        var_e = LinExpr.var(frac_var)
        floor_c = ("le", var_e - LinExpr.constant(math.floor(val)))
        ceil_c = ("ge", var_e - LinExpr.constant(math.ceil(val)))
        reasons = None
        for kind, extra in (floor_c, ceil_c):
            simplex.push()
            try:
                if kind == "le":
                    simplex.assert_upper(extra, "_branch")
                else:
                    simplex.assert_lower(extra, "_branch")
                return self._solve_on(simplex, budget, depth + 1)
            except LiaConflict as cf:
                rs = set(cf.reasons)
                rs.discard("_branch")
                reasons = rs if reasons is None else (reasons | rs)
            finally:
                simplex.pop()
        raise LiaConflict(frozenset(reasons if reasons is not None else set()))


def _integerize(expr: LinExpr) -> LinExpr:
    """Scale an expression so all coefficients are integers."""
    denom = 1
    for c in list(expr.coeffs.values()) + [expr.const]:
        denom = denom * c.denominator // math.gcd(denom, c.denominator)
    return expr.scale(denom)
