"""Hash-consed term representation and smart constructors.

Every term is interned: structurally equal terms are the same Python object,
so equality tests and dict lookups are O(1) identity operations.  This is the
single most important performance property of the solver stack — congruence
closure, E-matching, and the VC generator all lean on it.

Terms are built through the module-level smart constructors (:func:`And`,
:func:`Eq`, :func:`ForAll`, ...) which perform light, always-sound
simplification (constant folding, flattening, double-negation) so that the
boolean skeleton handed to the SAT solver stays small.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Iterator, Optional, Sequence

from .sorts import BOOL, INT, BitVecSort, Sort, _dhash


def _combine(*parts: int) -> int:
    """Deterministic hash combiner (order-sensitive)."""
    acc = 0x811C9DC5
    for p in parts:
        acc = (acc ^ (p & 0xFFFFFFFFFFFFFFFF)) * 0x100000001B3
        acc &= 0xFFFFFFFFFFFFFFFF
    return acc


def _payload_hash(payload) -> int:
    if payload is None:
        return 0
    if isinstance(payload, str):
        return _dhash(payload)
    if isinstance(payload, bool):
        return 2 if payload else 1
    if isinstance(payload, int):
        return payload & 0xFFFFFFFFFFFFFFFF
    if isinstance(payload, FuncDecl):
        return payload._hash
    if isinstance(payload, tuple):
        return _combine(*(_payload_hash(p) if not isinstance(p, Term)
                          else p._hash for p in _flatten_payload(payload)))
    raise TypeError(f"unhashable payload {payload!r}")


def _flatten_payload(payload):
    for p in payload:
        if isinstance(p, tuple):
            yield from _flatten_payload(p)
        else:
            yield p

# ---------------------------------------------------------------------------
# Term kinds
# ---------------------------------------------------------------------------

VAR = "var"            # free constant (or quantifier-bound variable)
BOOL_CONST = "bool"
INT_CONST = "int"
BV_CONST = "bv"
APP = "app"            # uninterpreted function application
NOT = "not"
AND = "and"
OR = "or"
IMPLIES = "=>"
ITE = "ite"
EQ = "="
DISTINCT = "distinct"
ADD = "+"
SUB = "-"
MUL = "*"
IDIV = "div"
IMOD = "mod"
NEG = "neg"
LE = "<="
LT = "<"
FORALL = "forall"
EXISTS = "exists"
# Bit-vector operations (all operate on equal widths).
BVAND = "bvand"
BVOR = "bvor"
BVXOR = "bvxor"
BVNOT = "bvnot"
BVADD = "bvadd"
BVSUB = "bvsub"
BVMUL = "bvmul"
BVUDIV = "bvudiv"
BVUREM = "bvurem"
BVSHL = "bvshl"
BVLSHR = "bvlshr"
BVULE = "bvule"
BVULT = "bvult"

ARITH_KINDS = frozenset({ADD, SUB, MUL, IDIV, IMOD, NEG, LE, LT})
BV_KINDS = frozenset(
    {BVAND, BVOR, BVXOR, BVNOT, BVADD, BVSUB, BVMUL, BVUDIV, BVUREM,
     BVSHL, BVLSHR, BVULE, BVULT}
)
QUANT_KINDS = frozenset({FORALL, EXISTS})


class FuncDecl:
    """An uninterpreted function (or constant) declaration; interned."""

    __slots__ = ("name", "arg_sorts", "ret_sort", "_hash")
    _interned: dict[tuple, "FuncDecl"] = {}

    def __new__(cls, name: str, arg_sorts: Sequence[Sort], ret_sort: Sort):
        key = (name, tuple(arg_sorts), ret_sort)
        existing = cls._interned.get(key)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        obj.name = name
        obj.arg_sorts = tuple(arg_sorts)
        obj.ret_sort = ret_sort
        obj._hash = _combine(_dhash(name),
                             *(s._hash for s in obj.arg_sorts),
                             ret_sort._hash)
        # setdefault is atomic under the GIL: concurrent threads interning
        # the same key all receive one canonical object (`is` stays sound).
        return cls._interned.setdefault(key, obj)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self.name

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __call__(self, *args: "Term") -> "Term":
        return App(self, *args)


class Term:
    """An interned SMT term.

    Attributes:
        kind: one of the kind constants above.
        sort: the term's sort.
        args: child terms.
        payload: kind-specific data — the variable name for ``VAR``, the
            Python value for constants, the :class:`FuncDecl` for ``APP``,
            and ``(bound_vars, triggers)`` for quantifiers.
    """

    __slots__ = ("kind", "sort", "args", "payload", "_hash", "_free")
    _interned: dict[tuple, "Term"] = {}

    def __new__(cls, kind: str, sort: Sort, args: tuple = (), payload=None):
        key = (kind, sort, args, payload)
        existing = cls._interned.get(key)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        obj.kind = kind
        obj.sort = sort
        obj.args = args
        obj.payload = payload
        obj._hash = _combine(_dhash(kind), sort._hash,
                             *(a._hash for a in args),
                             _payload_hash(payload))
        obj._free = None
        # Atomic under the GIL; losers of a racy double-construct are dropped.
        return cls._interned.setdefault(key, obj)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        from .printer import term_to_str

        return term_to_str(self)

    # -- inspection helpers -------------------------------------------------

    def is_const(self) -> bool:
        return self.kind in (BOOL_CONST, INT_CONST, BV_CONST)

    def is_var(self) -> bool:
        return self.kind == VAR

    def is_quant(self) -> bool:
        return self.kind in QUANT_KINDS

    @property
    def value(self):
        """The Python value of a constant term."""
        if not self.is_const():
            raise ValueError(f"not a constant: {self!r}")
        return self.payload

    @property
    def decl(self) -> FuncDecl:
        if self.kind != APP:
            raise ValueError(f"not an application: {self!r}")
        return self.payload

    @property
    def bound_vars(self) -> tuple:
        if not self.is_quant():
            raise ValueError(f"not a quantifier: {self!r}")
        return self.payload[0]

    @property
    def triggers(self) -> tuple:
        if not self.is_quant():
            raise ValueError(f"not a quantifier: {self!r}")
        return self.payload[1]

    @property
    def body(self) -> "Term":
        if not self.is_quant():
            raise ValueError(f"not a quantifier: {self!r}")
        return self.args[0]

    def free_vars(self) -> frozenset:
        """The set of free VAR terms, computed lazily and cached."""
        if self._free is not None:
            return self._free
        if self.kind == VAR:
            result = frozenset((self,))
        elif self.is_quant():
            result = self.args[0].free_vars() - frozenset(self.payload[0])
        else:
            result = frozenset()
            for a in self.args:
                result |= a.free_vars()
        self._free = result
        return result

    def subterms(self) -> Iterator["Term"]:
        """Iterate all subterms (including self), pre-order, deduplicated."""
        seen = set()
        stack = [self]
        while stack:
            t = stack.pop()
            if t in seen:
                continue
            seen.add(t)
            yield t
            stack.extend(t.args)

    def size(self) -> int:
        """Number of distinct subterms (DAG size)."""
        return sum(1 for _ in self.subterms())


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

TRUE = Term(BOOL_CONST, BOOL, (), True)
FALSE = Term(BOOL_CONST, BOOL, (), False)


def BoolVal(b: bool) -> Term:
    return TRUE if b else FALSE


# Small integer literals dominate encoder output (indices, bounds, enum
# tags); serving them from a preallocated table skips the intern-dict
# key construction and lookup in Term.__new__ on the hottest path.
_SMALL_INTS = tuple(Term(INT_CONST, INT, (), i) for i in range(-16, 257))


def IntVal(n: int) -> Term:
    if type(n) is int and -16 <= n <= 256:
        return _SMALL_INTS[n + 16]
    return Term(INT_CONST, INT, (), int(n))


def BVVal(value: int, width: int) -> Term:
    mask = (1 << width) - 1
    return Term(BV_CONST, BitVecSort(width), (), value & mask)


def Var(name: str, sort: Sort) -> Term:
    return Term(VAR, sort, (), name)


def App(decl: FuncDecl, *args: Term) -> Term:
    if len(args) != decl.arity:
        raise ValueError(f"{decl.name} expects {decl.arity} args, got {len(args)}")
    for a, s in zip(args, decl.arg_sorts):
        if a.sort is not s:
            raise ValueError(f"{decl.name}: arg {a!r} has sort {a.sort}, expected {s}")
    return Term(APP, decl.ret_sort, tuple(args), decl)


def Const(name: str, sort: Sort) -> Term:
    """A free constant — alias for :func:`Var` matching SMT-LIB vocabulary."""
    return Var(name, sort)


def Not(a: Term) -> Term:
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.kind == NOT:
        return a.args[0]
    return Term(NOT, BOOL, (a,))


def _flatten(kind: str, parts: Iterable[Term]) -> list[Term]:
    out: list[Term] = []
    for p in parts:
        if p.kind == kind:
            out.extend(p.args)
        else:
            out.append(p)
    return out


def And(*parts: Term) -> Term:
    flat = _flatten(AND, parts)
    kept: list[Term] = []
    seen = set()
    for p in flat:
        if p is FALSE:
            return FALSE
        if p is TRUE or p in seen:
            continue
        seen.add(p)
        kept.append(p)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return Term(AND, BOOL, tuple(kept))


def Or(*parts: Term) -> Term:
    flat = _flatten(OR, parts)
    kept: list[Term] = []
    seen = set()
    for p in flat:
        if p is TRUE:
            return TRUE
        if p is FALSE or p in seen:
            continue
        seen.add(p)
        kept.append(p)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Term(OR, BOOL, tuple(kept))


def Implies(a: Term, b: Term) -> Term:
    if a is TRUE:
        return b
    if a is FALSE or b is TRUE:
        return TRUE
    if b is FALSE:
        return Not(a)
    return Term(IMPLIES, BOOL, (a, b))


def Iff(a: Term, b: Term) -> Term:
    return Eq(a, b)


def Eq(a: Term, b: Term) -> Term:
    if a.sort is not b.sort:
        raise ValueError(f"sort mismatch in =: {a!r}:{a.sort} vs {b!r}:{b.sort}")
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return BoolVal(a.payload == b.payload)
    # Canonical argument order keeps the intern table small.
    if b._hash < a._hash:
        a, b = b, a
    return Term(EQ, BOOL, (a, b))


def Ne(a: Term, b: Term) -> Term:
    return Not(Eq(a, b))


def Distinct(*parts: Term) -> Term:
    if len(parts) <= 1:
        return TRUE
    if len(parts) == 2:
        return Ne(parts[0], parts[1])
    return Term(DISTINCT, BOOL, tuple(parts))


def Ite(c: Term, t: Term, e: Term) -> Term:
    if t.sort is not e.sort:
        raise ValueError("ite branches must share a sort")
    if c is TRUE:
        return t
    if c is FALSE:
        return e
    if t is e:
        return t
    if t.sort is BOOL:
        return And(Implies(c, t), Implies(Not(c), e))
    return Term(ITE, t.sort, (c, t, e))


# -- integer arithmetic ------------------------------------------------------


def _int_args(kind: str, parts: Sequence[Term]) -> None:
    for p in parts:
        if p.sort is not INT:
            raise ValueError(f"{kind}: expected Int, got {p!r}:{p.sort}")


def Add(*parts: Term) -> Term:
    _int_args(ADD, parts)
    flat = _flatten(ADD, parts)
    const = sum(p.payload for p in flat if p.kind == INT_CONST)
    rest = [p for p in flat if p.kind != INT_CONST]
    if const != 0 or not rest:
        rest.append(IntVal(const))
    if len(rest) == 1:
        return rest[0]
    return Term(ADD, INT, tuple(rest))


def Sub(a: Term, b: Term) -> Term:
    _int_args(SUB, (a, b))
    if a.kind == INT_CONST and b.kind == INT_CONST:
        return IntVal(a.payload - b.payload)
    if b.kind == INT_CONST and b.payload == 0:
        return a
    if a is b:
        return IntVal(0)
    return Term(SUB, INT, (a, b))


def Mul(a: Term, b: Term) -> Term:
    _int_args(MUL, (a, b))
    if a.kind == INT_CONST and b.kind == INT_CONST:
        return IntVal(a.payload * b.payload)
    if a.kind == INT_CONST and a.payload == 1:
        return b
    if b.kind == INT_CONST and b.payload == 1:
        return a
    if (a.kind == INT_CONST and a.payload == 0) or (b.kind == INT_CONST and b.payload == 0):
        return IntVal(0)
    if b._hash < a._hash:
        a, b = b, a
    return Term(MUL, INT, (a, b))


def Div(a: Term, b: Term) -> Term:
    """Euclidean integer division (SMT-LIB ``div``)."""
    _int_args(IDIV, (a, b))
    if a.kind == INT_CONST and b.kind == INT_CONST and b.payload != 0:
        q = a.payload // b.payload if b.payload > 0 else -(a.payload // -b.payload)
        return IntVal(q)
    return Term(IDIV, INT, (a, b))


def Mod(a: Term, b: Term) -> Term:
    """Euclidean remainder (SMT-LIB ``mod``; result in [0, |b|) )."""
    _int_args(IMOD, (a, b))
    if a.kind == INT_CONST and b.kind == INT_CONST and b.payload != 0:
        return IntVal(a.payload % abs(b.payload))
    return Term(IMOD, INT, (a, b))


def Neg(a: Term) -> Term:
    _int_args(NEG, (a,))
    if a.kind == INT_CONST:
        return IntVal(-a.payload)
    return Term(NEG, INT, (a,))


def Le(a: Term, b: Term) -> Term:
    _int_args(LE, (a, b))
    if a.kind == INT_CONST and b.kind == INT_CONST:
        return BoolVal(a.payload <= b.payload)
    if a is b:
        return TRUE
    return Term(LE, BOOL, (a, b))


def Lt(a: Term, b: Term) -> Term:
    _int_args(LT, (a, b))
    if a.kind == INT_CONST and b.kind == INT_CONST:
        return BoolVal(a.payload < b.payload)
    if a is b:
        return FALSE
    return Term(LT, BOOL, (a, b))


def Ge(a: Term, b: Term) -> Term:
    return Le(b, a)


def Gt(a: Term, b: Term) -> Term:
    return Lt(b, a)


# -- bit vectors -------------------------------------------------------------


def _bv_binop(kind: str, a: Term, b: Term, ret_bool: bool = False) -> Term:
    if not a.sort.is_bv() or a.sort is not b.sort:
        raise ValueError(f"{kind}: operands must share a BV sort")
    return Term(kind, BOOL if ret_bool else a.sort, (a, b))


def BvAnd(a: Term, b: Term) -> Term:
    return _bv_binop(BVAND, a, b)


def BvOr(a: Term, b: Term) -> Term:
    return _bv_binop(BVOR, a, b)


def BvXor(a: Term, b: Term) -> Term:
    return _bv_binop(BVXOR, a, b)


def BvNot(a: Term) -> Term:
    if not a.sort.is_bv():
        raise ValueError("bvnot: operand must be a BV")
    return Term(BVNOT, a.sort, (a,))


def BvAdd(a: Term, b: Term) -> Term:
    return _bv_binop(BVADD, a, b)


def BvSub(a: Term, b: Term) -> Term:
    return _bv_binop(BVSUB, a, b)


def BvMul(a: Term, b: Term) -> Term:
    return _bv_binop(BVMUL, a, b)


def BvUDiv(a: Term, b: Term) -> Term:
    return _bv_binop(BVUDIV, a, b)


def BvURem(a: Term, b: Term) -> Term:
    return _bv_binop(BVUREM, a, b)


def BvShl(a: Term, b: Term) -> Term:
    return _bv_binop(BVSHL, a, b)


def BvLshr(a: Term, b: Term) -> Term:
    return _bv_binop(BVLSHR, a, b)


def BvULe(a: Term, b: Term) -> Term:
    return _bv_binop(BVULE, a, b, ret_bool=True)


def BvULt(a: Term, b: Term) -> Term:
    return _bv_binop(BVULT, a, b, ret_bool=True)


# -- quantifiers -------------------------------------------------------------


def ForAll(bound: Sequence[Term], body: Term,
           triggers: Optional[Sequence[Sequence[Term]]] = None) -> Term:
    return _quant(FORALL, bound, body, triggers)


def Exists(bound: Sequence[Term], body: Term,
           triggers: Optional[Sequence[Sequence[Term]]] = None) -> Term:
    return _quant(EXISTS, bound, body, triggers)


def _quant(kind: str, bound, body: Term, triggers) -> Term:
    bound = tuple(bound)
    if not bound:
        return body
    for v in bound:
        if not v.is_var():
            raise ValueError(f"quantified variable must be a Var: {v!r}")
    if body.sort is not BOOL:
        raise ValueError("quantifier body must be Bool")
    trig = tuple(tuple(t) for t in triggers) if triggers else ()
    return Term(kind, BOOL, (body,), (bound, trig))


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------

_fresh_counter = [0]


def fresh_name(prefix: str = "k") -> str:
    """Return a globally fresh identifier (used for skolemization etc.)."""
    _fresh_counter[0] += 1
    return f"{prefix}!{_fresh_counter[0]}"


def substitute(term: Term, mapping: dict) -> Term:
    """Capture-avoiding simultaneous substitution of free variables.

    ``mapping`` maps VAR terms to replacement terms of the same sort.
    """
    if not mapping:
        return term
    cache: dict[tuple, Term] = {}

    def walk(t: Term, live: dict) -> Term:
        if not live:
            return t
        key = (t, tuple(sorted(live.items(), key=lambda kv: kv[0]._hash)))
        hit = cache.get(key)
        if hit is not None:
            return hit
        if t.kind == VAR:
            result = live.get(t, t)
        elif t.is_quant():
            inner = {v: r for v, r in live.items() if v not in t.payload[0]}
            # Rename binders that would capture free vars of replacements.
            replaced_frees = frozenset().union(
                *(r.free_vars() for r in inner.values())) if inner else frozenset()
            bound = list(t.payload[0])
            renames = {}
            for i, bv_ in enumerate(bound):
                if bv_ in replaced_frees:
                    nv = Var(fresh_name(bv_.payload), bv_.sort)
                    renames[bv_] = nv
                    bound[i] = nv
            body = t.args[0]
            if renames:
                body = walk(body, renames)
            body2 = walk(body, inner) if inner else body
            trig2 = tuple(
                tuple(walk(walk(p, renames) if renames else p, inner) if inner
                      else (walk(p, renames) if renames else p)
                      for p in grp)
                for grp in t.payload[1])
            result = _quant(t.kind, tuple(bound), body2, trig2)
        elif not t.args:
            result = t
        else:
            new_args = tuple(walk(a, live) for a in t.args)
            if new_args == t.args:
                result = t
            else:
                result = _rebuild(t, new_args)
        cache[key] = result
        return result

    return walk(term, dict(mapping))


_REBUILDERS = {}


def _rebuild(t: Term, new_args: tuple) -> Term:
    """Rebuild a non-quantifier term with new children via smart constructors."""
    k = t.kind
    if k == APP:
        return App(t.payload, *new_args)
    if k == NOT:
        return Not(new_args[0])
    if k == AND:
        return And(*new_args)
    if k == OR:
        return Or(*new_args)
    if k == IMPLIES:
        return Implies(*new_args)
    if k == EQ:
        return Eq(*new_args)
    if k == DISTINCT:
        return Distinct(*new_args)
    if k == ITE:
        return Ite(*new_args)
    if k == ADD:
        return Add(*new_args)
    if k == SUB:
        return Sub(*new_args)
    if k == MUL:
        return Mul(*new_args)
    if k == IDIV:
        return Div(*new_args)
    if k == IMOD:
        return Mod(*new_args)
    if k == NEG:
        return Neg(new_args[0])
    if k == LE:
        return Le(*new_args)
    if k == LT:
        return Lt(*new_args)
    if k in BV_KINDS:
        if k in (BVULE, BVULT):
            return _bv_binop(k, new_args[0], new_args[1], ret_bool=True)
        if k == BVNOT:
            return BvNot(new_args[0])
        return _bv_binop(k, new_args[0], new_args[1])
    raise ValueError(f"cannot rebuild kind {k}")
