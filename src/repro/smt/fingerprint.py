"""Deterministic term serialization and content fingerprints.

Two services for the verification scheduler (:mod:`repro.vc.scheduler`):

1. **Serialization** — terms are hash-consed per process
   (:class:`repro.smt.terms.Term` has a custom ``__new__`` and cannot be
   pickled), so obligation jobs that cross a process boundary carry a
   portable node-table encoding of the term DAG instead.  Deserialization
   rebuilds through the smart constructors, which are idempotent on their
   own output, so the worker reconstructs structurally identical terms.

2. **Fingerprints** — ``sha256(canonical SMT-LIB2 query text + solver
   knobs + discharge strategy)``, the content address used by the
   on-disk proof cache (:mod:`repro.vc.cache`).  All hashing inputs are
   deterministic: term hashes use :func:`repro.smt.sorts._dhash` and the
   printer emits declarations in sorted order.
"""

from __future__ import annotations

import hashlib
import json
from typing import Sequence

from . import sorts as S
from . import terms as T
from .printer import query_to_smtlib


# ---------------------------------------------------------------------------
# Sort encoding
# ---------------------------------------------------------------------------

def encode_sort(sort: S.Sort):
    if sort is S.BOOL:
        return "B"
    if sort is S.INT:
        return "I"
    if isinstance(sort, S.BitVecSort):
        return ("bv", sort.width)
    if isinstance(sort, S.UninterpretedSort):
        return ("u", sort.name)
    raise ValueError(f"cannot serialize sort {sort!r}")


def decode_sort(enc) -> S.Sort:
    if enc == "B":
        return S.BOOL
    if enc == "I":
        return S.INT
    tag, arg = enc
    if tag == "bv":
        return S.bv(arg)
    if tag == "u":
        return S.uninterpreted(arg)
    raise ValueError(f"cannot deserialize sort {enc!r}")


# ---------------------------------------------------------------------------
# Term DAG serialization
# ---------------------------------------------------------------------------

def _children(t: T.Term) -> tuple:
    """All sub-Terms a node references, including quantifier payload terms."""
    if t.is_quant():
        trig_terms = tuple(p for grp in t.payload[1] for p in grp)
        return t.payload[0] + trig_terms + t.args
    return t.args


def serialize_terms(terms: Sequence[T.Term]) -> tuple:
    """Encode a list of terms as a picklable ``(nodes, decls, roots)`` table.

    Shared subterms are emitted once (the DAG structure survives), so the
    payload size tracks the hash-consed size, not the tree size.
    """
    nodes: list = []
    index: dict[T.Term, int] = {}
    decls: list = []
    decl_ix: dict[T.FuncDecl, int] = {}

    def decl_id(decl: T.FuncDecl) -> int:
        i = decl_ix.get(decl)
        if i is None:
            i = len(decls)
            decls.append((decl.name,
                          tuple(encode_sort(s) for s in decl.arg_sorts),
                          encode_sort(decl.ret_sort)))
            decl_ix[decl] = i
        return i

    def emit(t: T.Term) -> None:
        k = t.kind
        if k == T.VAR:
            node = ("v", t.payload, encode_sort(t.sort))
        elif k == T.BOOL_CONST:
            node = ("cb", bool(t.payload))
        elif k == T.INT_CONST:
            node = ("ci", t.payload)
        elif k == T.BV_CONST:
            node = ("cv", t.payload, t.sort.width)
        elif k == T.APP:
            node = ("a", decl_id(t.payload),
                    tuple(index[a] for a in t.args))
        elif t.is_quant():
            node = ("q", k,
                    tuple(index[v] for v in t.payload[0]),
                    tuple(tuple(index[p] for p in grp)
                          for grp in t.payload[1]),
                    index[t.args[0]])
        else:
            node = ("o", k, tuple(index[a] for a in t.args))
        index[t] = len(nodes)
        nodes.append(node)

    for root in terms:
        stack = [root]
        while stack:
            t = stack[-1]
            if t in index:
                stack.pop()
                continue
            missing = [c for c in _children(t) if c not in index]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            emit(t)
    return nodes, decls, tuple(index[t] for t in terms)


_OPS = {
    T.NOT: lambda a: T.Not(a[0]),
    T.AND: lambda a: T.And(*a),
    T.OR: lambda a: T.Or(*a),
    T.IMPLIES: lambda a: T.Implies(*a),
    T.EQ: lambda a: T.Eq(*a),
    T.DISTINCT: lambda a: T.Distinct(*a),
    T.ITE: lambda a: T.Ite(*a),
    T.ADD: lambda a: T.Add(*a),
    T.SUB: lambda a: T.Sub(*a),
    T.MUL: lambda a: T.Mul(*a),
    T.IDIV: lambda a: T.Div(*a),
    T.IMOD: lambda a: T.Mod(*a),
    T.NEG: lambda a: T.Neg(a[0]),
    T.LE: lambda a: T.Le(*a),
    T.LT: lambda a: T.Lt(*a),
    T.BVNOT: lambda a: T.BvNot(a[0]),
}


def _build_op(kind: str, args: list) -> T.Term:
    builder = _OPS.get(kind)
    if builder is not None:
        return builder(args)
    if kind in T.BV_KINDS:
        return T._bv_binop(kind, args[0], args[1],
                           ret_bool=kind in (T.BVULE, T.BVULT))
    raise ValueError(f"cannot deserialize term kind {kind!r}")


def deserialize_terms(payload: tuple) -> list[T.Term]:
    """Rebuild the terms encoded by :func:`serialize_terms`."""
    nodes, decls, roots = payload
    decl_objs = [T.FuncDecl(name,
                            [decode_sort(s) for s in arg_encs],
                            decode_sort(ret_enc))
                 for name, arg_encs, ret_enc in decls]
    built: list[T.Term] = []
    for node in nodes:
        tag = node[0]
        if tag == "v":
            built.append(T.Var(node[1], decode_sort(node[2])))
        elif tag == "cb":
            built.append(T.BoolVal(node[1]))
        elif tag == "ci":
            built.append(T.IntVal(node[1]))
        elif tag == "cv":
            built.append(T.BVVal(node[1], node[2]))
        elif tag == "a":
            built.append(decl_objs[node[1]](*[built[i] for i in node[2]]))
        elif tag == "q":
            _, kind, bound, trigs, body = node
            bvars = tuple(built[i] for i in bound)
            triggers = tuple(tuple(built[i] for i in grp) for grp in trigs)
            mk = T.ForAll if kind == T.FORALL else T.Exists
            built.append(mk(bvars, built[body], triggers or None))
        else:
            built.append(_build_op(node[1], [built[i] for i in node[2]]))
    return [built[r] for r in roots]


# ---------------------------------------------------------------------------
# Content fingerprints
# ---------------------------------------------------------------------------

def solver_config_key(config) -> dict:
    """The JSON-able knob dict that participates in the cache key.

    Every :class:`~repro.smt.solver.SolverConfig` attribute affects
    verdicts (budgets change TIMEOUT outcomes), so all of them are keyed.
    """
    return {k: v for k, v in sorted(vars(config).items())}


def obligation_digest(assertions: Sequence[T.Term], config_key: dict,
                      strategy: str = "") -> str:
    """Content address of one obligation: query text + knobs + strategy.

    ``strategy`` names the discharge loop (the VcGen subclass), so that
    e.g. an F*-style solver-racing pipeline never shares entries with the
    default single-shot discharge of the same query text.
    """
    h = hashlib.sha256()
    h.update(query_to_smtlib(assertions).encode())
    h.update(b"\x00")
    h.update(json.dumps(config_key, sort_keys=True, default=str).encode())
    h.update(b"\x00")
    h.update(strategy.encode())
    return h.hexdigest()


def function_fingerprint(chunks: Sequence[str], config_key: dict,
                         strategy: str = "") -> str:
    """Function-level dependency fingerprint for delta re-verification.

    ``chunks`` are canonical renderings of everything a function's
    verification outcome depends on (its own AST, datatype declarations,
    reachable spec-function definitions, callee contracts — assembled by
    :mod:`repro.vc.delta`).  The hash is namespaced with a leading
    ``fn\\x00`` marker so a function fingerprint can never collide with
    an :func:`obligation_digest` of the same text.
    """
    h = hashlib.sha256()
    h.update(b"fn\x00")
    for chunk in chunks:
        h.update(chunk.encode())
        h.update(b"\x00")
    h.update(json.dumps(config_key, sort_keys=True, default=str).encode())
    h.update(b"\x00")
    h.update(strategy.encode())
    return h.hexdigest()


def idiom_digest(engine: str, terms: Sequence[T.Term]) -> str:
    """Content address of a §3.3 idiom-engine query.

    The engines (``bit_vector`` bit-blasting, ``nonlinear_arith``,
    ``integer_ring``) are deterministic functions of their translated
    terms alone — no solver knobs participate — so the key is just the
    engine name plus the canonical text of each term.
    """
    h = hashlib.sha256()
    h.update(engine.encode())
    for t in terms:
        h.update(b"\x00")
        h.update(query_to_smtlib([t]).encode())
    return h.hexdigest()
