"""``by(compute)``: proof by symbolic computation.

Some proof obligations have statically computable answers — the paper's
motivating example is a CRC-32 lookup table whose entries result from
polynomial division.  A built-in symbolic interpreter simplifies the goal;
whatever cannot be fully evaluated is handed back to the SMT path.

The interpreter evaluates ground terms, unfolds user ``spec fn``
definitions with a fuel bound, folds constants, and short-circuits boolean
structure.  It is trusted the same way the paper's interpreter is.
"""

from __future__ import annotations

from typing import Optional

from . import terms as T
from .sorts import BOOL, INT


class ComputeEnv:
    """Definitions available to the interpreter: FuncDecl -> (params, body)."""

    def __init__(self):
        self._defs: dict[T.FuncDecl, tuple[tuple[T.Term, ...], T.Term]] = {}

    def define(self, decl: T.FuncDecl, params, body: T.Term) -> None:
        params = tuple(params)
        if len(params) != decl.arity:
            raise ValueError(f"{decl.name}: {len(params)} params for arity "
                             f"{decl.arity}")
        self._defs[decl] = (params, body)

    def lookup(self, decl: T.FuncDecl):
        return self._defs.get(decl)


class OutOfFuel(Exception):
    """Unfolding exceeded the fuel budget."""


def evaluate(t: T.Term, env: Optional[ComputeEnv] = None,
             fuel: int = 100000) -> T.Term:
    """Symbolically evaluate a term as far as possible.

    Returns a simplified term; a fully-computable term becomes a constant.
    Raises OutOfFuel if definitional unfolding exceeds the budget.
    """
    env = env or ComputeEnv()
    budget = [fuel]
    return _eval(t, env, budget)


def _eval(t: T.Term, env: ComputeEnv, budget: list[int]) -> T.Term:
    if budget[0] <= 0:
        raise OutOfFuel()
    budget[0] -= 1
    k = t.kind
    if t.is_const() or k == T.VAR:
        return t
    if k == T.ITE:
        c = _eval(t.args[0], env, budget)
        if c is T.TRUE:
            return _eval(t.args[1], env, budget)
        if c is T.FALSE:
            return _eval(t.args[2], env, budget)
        return T.Ite(c, _eval(t.args[1], env, budget),
                     _eval(t.args[2], env, budget))
    if k == T.AND:
        out = []
        for a in t.args:
            v = _eval(a, env, budget)
            if v is T.FALSE:
                return T.FALSE
            if v is not T.TRUE:
                out.append(v)
        return T.And(*out)
    if k == T.OR:
        out = []
        for a in t.args:
            v = _eval(a, env, budget)
            if v is T.TRUE:
                return T.TRUE
            if v is not T.FALSE:
                out.append(v)
        return T.Or(*out)
    if k == T.IMPLIES:
        a = _eval(t.args[0], env, budget)
        if a is T.FALSE:
            return T.TRUE
        b = _eval(t.args[1], env, budget)
        return T.Implies(a, b)
    if k == T.NOT:
        return T.Not(_eval(t.args[0], env, budget))
    if t.is_quant():
        return t  # quantifiers are not computed
    if k == T.APP:
        args = tuple(_eval(a, env, budget) for a in t.args)
        definition = env.lookup(t.payload)
        if definition is not None and all(a.is_const() for a in args):
            params, body = definition
            return _eval(T.substitute(body, dict(zip(params, args))),
                         env, budget)
        return T.App(t.payload, *args)
    # Interpreted operators: smart constructors fold constants, and the
    # BV operators need explicit folding.
    args = tuple(_eval(a, env, budget) for a in t.args)
    if k in T.BV_KINDS and all(a.kind == T.BV_CONST for a in args):
        return _fold_bv(k, args)
    return T._rebuild(t, args)


def _fold_bv(kind: str, args: tuple) -> T.Term:
    width = args[0].sort.width
    mask = (1 << width) - 1
    vals = [a.payload for a in args]
    if kind == T.BVAND:
        return T.BVVal(vals[0] & vals[1], width)
    if kind == T.BVOR:
        return T.BVVal(vals[0] | vals[1], width)
    if kind == T.BVXOR:
        return T.BVVal(vals[0] ^ vals[1], width)
    if kind == T.BVNOT:
        return T.BVVal(~vals[0] & mask, width)
    if kind == T.BVADD:
        return T.BVVal(vals[0] + vals[1], width)
    if kind == T.BVSUB:
        return T.BVVal(vals[0] - vals[1], width)
    if kind == T.BVMUL:
        return T.BVVal(vals[0] * vals[1], width)
    if kind == T.BVUDIV:
        return T.BVVal(vals[0] // vals[1] if vals[1] else mask, width)
    if kind == T.BVUREM:
        return T.BVVal(vals[0] % vals[1] if vals[1] else vals[0], width)
    if kind == T.BVSHL:
        return T.BVVal(vals[0] << vals[1] if vals[1] < width else 0, width)
    if kind == T.BVLSHR:
        return T.BVVal(vals[0] >> vals[1] if vals[1] < width else 0, width)
    if kind == T.BVULE:
        return T.BoolVal(vals[0] <= vals[1])
    if kind == T.BVULT:
        return T.BoolVal(vals[0] < vals[1])
    raise ValueError(f"unhandled BV kind {kind}")


def prove_by_compute(goal: T.Term, env: Optional[ComputeEnv] = None,
                     fuel: int = 200000) -> tuple[bool, Optional[T.Term]]:
    """Try to prove a goal by evaluation.

    Returns (True, None) if the goal computes to TRUE; (False, residual)
    with the simplified residual term otherwise (the caller may send the
    residual to the SMT path, mirroring the paper's design).
    """
    try:
        result = evaluate(goal, env, fuel)
    except OutOfFuel:
        return False, goal
    if result is T.TRUE:
        return True, None
    return False, result
