"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, VSIDS-style activity
decision heuristic with phase saving, Luby restarts, and learned-clause
garbage collection.

Incremental use: :meth:`SatSolver.push` opens an assertion scope and
:meth:`SatSolver.pop` removes every clause and variable introduced since the
matching push.  Each clause carries the *scope* its validity depends on, and
conflict analysis propagates scopes into learned clauses, so pop can retain
any learned clause whose derivation only used surviving material.

Literal encoding: variable ``v`` (0-based int) has positive literal ``2*v``
and negative literal ``2*v + 1``; ``lit ^ 1`` negates.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional


def lit(var: int, positive: bool = True) -> int:
    """Build a literal from a variable index and a polarity."""
    return var * 2 + (0 if positive else 1)


def lit_var(l: int) -> int:
    return l >> 1


def lit_sign(l: int) -> bool:
    """True if the literal is positive."""
    return (l & 1) == 0


def neg(l: int) -> int:
    return l ^ 1


class _Clause:
    __slots__ = ("lits", "learned", "activity", "scope")

    def __init__(self, lits: list[int], learned: bool, scope: int = 0):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.scope = scope


def _luby(i: int) -> int:
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """CDCL SAT solver over clauses of int literals."""

    def __init__(self):
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        self._watches: list[list[_Clause]] = []   # indexed by literal
        self._assign: list[int] = []              # -1 unassigned, 0 false, 1 true
        self._level: list[int] = []
        self._reason: list[Optional[_Clause]] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity: list[float] = []
        self._phase: list[bool] = []
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self._ok = True
        # Why the last solve() returned None: conflict budget vs deadline.
        # The SMT layer reads this to tell RESOURCE_OUT from TIMEOUT.
        self.budget_exhausted = False
        # Incremental state: one frame per open push(); per-variable creation
        # scope and, for root (level-0) assignments, the scope the assignment
        # depends on.
        self._frames: list[tuple[int, int, bool, int]] = []
        self._var_scope: list[int] = []
        self._assign_scope: list[int] = []
        self._ok_scope = 0  # scope at which unsatisfiability was established

    # -- variables and clauses ----------------------------------------------

    def new_var(self) -> int:
        v = len(self._assign)
        self._assign.append(-1)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        self._var_scope.append(len(self._frames))
        self._assign_scope.append(0)
        return v

    @property
    def scope(self) -> int:
        """Number of open assertion scopes."""
        return len(self._frames)

    def scope_for(self, lits: Iterable[int]) -> int:
        """The shallowest scope at which every variable in ``lits`` exists.

        Theory-valid lemmas may be added at this scope so they survive pops.
        """
        s = 0
        for l in lits:
            vs = self._var_scope[l >> 1]
            if vs > s:
                s = vs
        return s

    @property
    def num_vars(self) -> int:
        return len(self._assign)

    def value(self, l: int) -> int:
        """-1 unassigned, 1 true, 0 false — for the given literal."""
        a = self._assign[l >> 1]
        if a < 0:
            return -1
        return a ^ (l & 1)

    def add_clause(self, lits: Iterable[int], learned: bool = False,
                   scope: Optional[int] = None) -> bool:
        """Add a clause. Returns False if the formula became trivially unsat.

        Must be called at decision level 0 (external API); learned clauses are
        added internally through conflict analysis instead.

        ``scope`` requests the assertion scope the clause belongs to (default:
        the current scope).  Valid lemmas may pass a shallower scope (see
        :meth:`scope_for`) so they are retained across :meth:`pop`; the
        effective scope is bumped by any root simplification that relied on
        deeper-scope assignments, keeping retention sound.
        """
        if not self._ok:
            return False
        self._backtrack(0)  # clear any assignment left over from a prior solve
        cur = len(self._frames)
        eff = cur if scope is None else min(scope, cur)
        seen: set[int] = set()
        out: list[int] = []
        sat_scope: Optional[int] = None
        for l in lits:
            if neg(l) in seen:
                return True  # tautology
            if l in seen:
                continue
            seen.add(l)
            v = l >> 1
            val = self.value(l)
            if val >= 0 and self._level[v] == 0:
                s = self._assign_scope[v]
                if val == 1:
                    # Satisfied at root.  Only safe to drop the whole clause
                    # if the satisfying assignment outlives the clause.
                    if sat_scope is None or s < sat_scope:
                        sat_scope = s
                    out.append(l)
                    if self._var_scope[v] > eff:
                        eff = self._var_scope[v]
                else:
                    # Falsified at root: dropping the literal is only valid
                    # while that assignment survives, so bump the scope.
                    if s > eff:
                        eff = s
            else:
                out.append(l)
                if self._var_scope[v] > eff:
                    eff = self._var_scope[v]
        if sat_scope is not None and sat_scope <= eff:
            return True  # already satisfied for the clause's whole lifetime
        if not out:
            self._ok = False
            self._ok_scope = eff
            return False
        if len(out) == 1:
            l0 = out[0]
            v0 = l0 >> 1
            if self.value(l0) == 0:
                self._ok = False
                self._ok_scope = max(eff, self._assign_scope[v0])
                return False
            if self.value(l0) == -1:
                self._enqueue(l0, None)
                self._assign_scope[v0] = eff
                conflict = self._propagate()
                if conflict is not None:
                    self._ok = False
                    self._ok_scope = self._root_conflict_scope(conflict)
                    return False
            elif self._assign_scope[v0] > eff:
                # Already true, but our unit pins it at a shallower scope.
                self._assign_scope[v0] = eff
            return True
        clause = _Clause(out, learned, eff)
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def _root_conflict_scope(self, c: _Clause) -> int:
        """Scope a root-level conflict depends on (clause + its assignments)."""
        s = c.scope
        for l in c.lits:
            a = self._assign_scope[l >> 1]
            if a > s:
                s = a
        return s

    def _attach(self, c: _Clause) -> None:
        self._watches[neg(c.lits[0])].append(c)
        self._watches[neg(c.lits[1])].append(c)

    # -- trail management ----------------------------------------------------

    def _enqueue(self, l: int, reason: Optional[_Clause]) -> None:
        v = l >> 1
        self._assign[v] = 1 - (l & 1)
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._phase[v] = lit_sign(l)
        self._trail.append(l)
        if not self._trail_lim:
            # Root assignment: record the scope it depends on so pop() can
            # decide whether it survives.
            if reason is None:
                s = len(self._frames)
            else:
                s = reason.scope
                ascope = self._assign_scope
                for q in reason.lits:
                    if q != l:
                        s2 = ascope[q >> 1]
                        if s2 > s:
                            s = s2
            self._assign_scope[v] = s

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for l in reversed(self._trail[limit:]):
            self._assign[l >> 1] = -1
            self._reason[l >> 1] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self.num_propagations += 1
            watchers = self._watches[p]
            i = 0
            j = 0
            n = len(watchers)
            while i < n:
                c = watchers[i]
                i += 1
                lits = c.lits
                # Ensure the false literal is lits[1].
                if lits[0] == neg(p):
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self.value(first) == 1:
                    watchers[j] = c
                    j += 1
                    continue
                # Search a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self.value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[neg(lits[1])].append(c)
                        found = True
                        break
                if found:
                    continue
                watchers[j] = c
                j += 1
                if self.value(first) == 0:
                    # Conflict: keep remaining watchers, return the clause.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(self._trail)
                    return c
                self._enqueue(first, c)
            del watchers[j:]
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > 1e100:
            for i in range(len(self._activity)):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int, int]:
        learnt: list[int] = [0]  # reserve slot for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        skip_lit: Optional[int] = None  # the literal the reason clause implied
        index = len(self._trail) - 1
        cur_level = self._decision_level()
        c: Optional[_Clause] = conflict
        # The learned clause's derivation depends on every clause traversed
        # and every root (level-0) assignment skipped; track the deepest
        # scope among them so pop() knows whether it can be retained.
        track = bool(self._frames)
        scope = 0
        while True:
            assert c is not None
            c.activity += self._cla_inc
            if track and c.scope > scope:
                scope = c.scope
            for q in c.lits:
                if skip_lit is not None and q == skip_lit:
                    continue
                v = q >> 1
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self._level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
                elif track and self._level[v] == 0:
                    if self._assign_scope[v] > scope:
                        scope = self._assign_scope[v]
            while not seen[self._trail[index] >> 1]:
                index -= 1
            pl = self._trail[index]
            index -= 1
            v = pl >> 1
            seen[v] = False
            counter -= 1
            skip_lit = pl
            c = self._reason[v]
            if counter == 0:
                break
        learnt[0] = neg(skip_lit)
        # Conflict-clause minimization (local): drop literals implied by others.
        marked = set(q >> 1 for q in learnt)
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = self._reason[q >> 1]
            if r is None or any((x >> 1) not in marked and self._level[x >> 1] > 0
                                for x in r.lits if x != neg(q)):
                kept.append(q)
            elif track:
                # Dropping q relied on its reason clause and that clause's
                # root-assigned literals.
                if r.scope > scope:
                    scope = r.scope
                for x in r.lits:
                    if self._level[x >> 1] == 0 and \
                            self._assign_scope[x >> 1] > scope:
                        scope = self._assign_scope[x >> 1]
        learnt = kept
        if track:
            # The clause must not outlive any of its own variables.
            for q in learnt:
                if self._var_scope[q >> 1] > scope:
                    scope = self._var_scope[q >> 1]
        if len(learnt) == 1:
            return learnt, 0, scope
        # Find backtrack level = second-highest level in learnt clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[learnt[i] >> 1] > self._level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[learnt[1] >> 1], scope

    # -- decisions ----------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        best_v = -1
        best_a = -1.0
        for v in range(self.num_vars):
            if self._assign[v] < 0 and self._activity[v] > best_a:
                best_a = self._activity[v]
                best_v = v
        if best_v < 0:
            return None
        return lit(best_v, self._phase[best_v])

    def _reduce_learned(self) -> None:
        self._learned.sort(key=lambda c: c.activity)
        keep_from = len(self._learned) // 2
        removed = set(id(c) for c in self._learned[:keep_from]
                      if len(c.lits) > 2 and not self._is_reason(c))
        if not removed:
            return
        self._learned = [c for c in self._learned if id(c) not in removed]
        for w in self._watches:
            w[:] = [c for c in w if id(c) not in removed]

    def _is_reason(self, c: _Clause) -> bool:
        v = c.lits[0] >> 1
        return self._reason[v] is c

    # -- main loop ------------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = (),
              conflict_budget: Optional[int] = None,
              deadline: Optional[float] = None) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (sat), False (unsat), or None if the conflict budget ran
        out or the wall-clock ``deadline`` (``time.monotonic`` value) passed.
        On sat, :meth:`model` reads variable values.
        """
        self.budget_exhausted = False
        if not self._ok:
            return False
        self._backtrack(0)
        assumptions = list(assumptions)
        restart_idx = 1
        conflicts_since_restart = 0
        restart_limit = 32 * _luby(restart_idx)
        max_learned = max(1000, len(self._clauses) // 2)
        budget_left = conflict_budget

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflicts_since_restart += 1
                if budget_left is not None:
                    budget_left -= 1
                    if budget_left <= 0:
                        self.budget_exhausted = True
                        self._backtrack(0)
                        return None
                if deadline is not None and self.num_conflicts % 256 == 0 \
                        and time.monotonic() >= deadline:
                    self._backtrack(0)
                    return None
                if self._decision_level() == 0:
                    self._ok = False
                    self._ok_scope = self._root_conflict_scope(conflict)
                    return False
                learnt, bt_level, scope = self._analyze(conflict)
                self._backtrack(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                    if bt_level == 0:
                        self._assign_scope[learnt[0] >> 1] = scope
                else:
                    c = _Clause(learnt, True, scope)
                    self._attach(c)
                    self._learned.append(c)
                    self._enqueue(learnt[0], c)
                self._var_inc /= 0.95
                self._cla_inc /= 0.999
                if len(self._learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                continue

            if conflicts_since_restart >= restart_limit:
                conflicts_since_restart = 0
                restart_idx += 1
                restart_limit = 32 * _luby(restart_idx)
                self._backtrack(0)
                continue

            # Apply assumptions in order.
            next_lit = None
            for a in assumptions:
                val = self.value(a)
                if val == 0:
                    return False  # assumption conflicts (no core extraction)
                if val == -1:
                    next_lit = a
                    break
            if next_lit is None:
                next_lit = self._pick_branch()
                if next_lit is None:
                    return True
                self.num_decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, None)

    def model(self) -> list[bool]:
        """Variable assignment after a sat result (unassigned vars -> False)."""
        return [a == 1 for a in self._assign]

    def model_value(self, var: int) -> Optional[bool]:
        """Assignment of one variable, or None if it was never decided."""
        if var < 0 or var >= len(self._assign) or self._assign[var] < 0:
            return None
        return self._assign[var] == 1

    # -- incremental scopes ---------------------------------------------------

    def push(self) -> None:
        """Open an assertion scope (checkpoints trail and variable counts)."""
        self._backtrack(0)
        self._frames.append((self.num_vars, len(self._trail), self._ok,
                             self._ok_scope))

    def pop(self, n: int = 1) -> None:
        """Close the ``n`` innermost scopes.

        Removes variables and clauses introduced since the matching push, but
        retains learned clauses (and root units) whose recorded scope shows
        their derivation only used surviving clauses and variables — that is
        what makes retention sound: a clause tagged with scope ``s`` is a
        logical consequence of the scope-``s`` prefix of the assertion stack
        alone.
        """
        target = len(self._frames) - n
        if target < 0:
            raise ValueError("pop without matching push")
        n_vars, n_trail, was_ok, was_ok_scope = self._frames[target]
        del self._frames[target:]
        self._backtrack(0)
        if not was_ok:
            self._ok = False
            self._ok_scope = was_ok_scope
        elif not self._ok:
            if self._ok_scope > target:
                self._ok = True
                self._ok_scope = 0
        # Root units made since the push survive if their scope is shallow
        # enough and their variable still exists.
        revive: list[tuple[int, int]] = []
        for l in self._trail[n_trail:]:
            v = l >> 1
            if v < n_vars and self._assign_scope[v] <= target:
                revive.append((l, self._assign_scope[v]))
            self._assign[v] = -1
            self._reason[v] = None
        del self._trail[n_trail:]
        del self._assign[n_vars:]
        del self._level[n_vars:]
        del self._reason[n_vars:]
        del self._activity[n_vars:]
        del self._phase[n_vars:]
        del self._var_scope[n_vars:]
        del self._assign_scope[n_vars:]
        del self._watches[2 * n_vars:]
        removed = set()
        for c in self._clauses:
            if c.scope > target:
                removed.add(id(c))
        for c in self._learned:
            if c.scope > target:
                removed.add(id(c))
        if removed:
            self._clauses = [c for c in self._clauses if id(c) not in removed]
            self._learned = [c for c in self._learned if id(c) not in removed]
            for w in self._watches:
                w[:] = [c for c in w if id(c) not in removed]
        for l, s in revive:
            v = l >> 1
            self._assign[v] = 1 - (l & 1)
            self._level[v] = 0
            self._phase[v] = lit_sign(l)
            self._trail.append(l)
            self._assign_scope[v] = s
        self._qhead = len(self._trail) - len(revive)
        if self._ok:
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                self._ok_scope = self._root_conflict_scope(conflict)

    def root_forced(self) -> Optional[set[int]]:
        """Literals forced by unit propagation at decision level 0.

        Returns None if propagation finds a root conflict (formula unsat).
        """
        if not self._ok:
            return None
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return None
        return set(self._trail)

    def relevant_literals(self) -> set[int]:
        """A justification cover: true literals sufficient to satisfy every
        input clause, plus all root-level forced literals.

        Theory solvers that only check this subset avoid chasing conflicts
        on arbitrarily-assigned don't-care atoms — a large practical win.
        """
        chosen: set[int] = set()
        limit = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for l in self._trail[:limit]:
            chosen.add(l)
        for c in self._clauses:
            sat_by_chosen = False
            candidate = None
            for l in c.lits:
                if self.value(l) == 1:
                    if l in chosen:
                        sat_by_chosen = True
                        break
                    if candidate is None:
                        candidate = l
            if not sat_by_chosen and candidate is not None:
                chosen.add(candidate)
        return chosen
