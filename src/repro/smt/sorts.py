"""Sort (type) representation for the SMT term language.

The solver works over four families of sorts:

* ``BOOL`` and ``INT`` — the interpreted base sorts,
* ``BitVecSort(width)`` — fixed-width bit vectors, dispatched to the
  bit-blaster (:mod:`repro.smt.bitvec`),
* ``UninterpretedSort(name)`` — free sorts, the home of datatype encodings
  and of EPR reasoning.

Sorts are immutable and interned, so identity comparison is equality.
"""

from __future__ import annotations

import zlib


def _dhash(text: str) -> int:
    """Deterministic string hash (PYTHONHASHSEED randomizes str hashing,
    which would make solver iteration orders — and hence verification
    times and occasionally outcomes near budget limits — vary per run)."""
    return zlib.crc32(text.encode())


class Sort:
    """Base class for all sorts. Instances are interned: ``a is b`` iff equal."""

    __slots__ = ("name", "_hash")
    _interned: dict[tuple, "Sort"] = {}

    def __new__(cls, name: str):
        key = (cls, name)
        existing = cls._interned.get(key)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        obj.name = name
        obj._hash = _dhash(f"{cls.__name__}:{name}")
        # setdefault keeps interning race-safe under concurrent threads.
        return cls._interned.setdefault(key, obj)

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return self._hash

    def is_bool(self) -> bool:
        return self is BOOL

    def is_int(self) -> bool:
        return self is INT

    def is_bv(self) -> bool:
        return isinstance(self, BitVecSort)

    def is_uninterpreted(self) -> bool:
        return isinstance(self, UninterpretedSort)


class _BaseSort(Sort):
    __slots__ = ()


class BitVecSort(Sort):
    """Fixed-width bit-vector sort."""

    __slots__ = ("width",)

    def __new__(cls, width: int):
        obj = super().__new__(cls, f"(_ BitVec {width})")
        obj.width = width
        return obj


class UninterpretedSort(Sort):
    """A free sort; used for datatypes, EPR relations, and abstraction."""

    __slots__ = ()


BOOL = _BaseSort("Bool")
INT = _BaseSort("Int")


def bv(width: int) -> BitVecSort:
    """Return the bit-vector sort of the given width."""
    if width <= 0:
        raise ValueError(f"bit-vector width must be positive, got {width}")
    return BitVecSort(width)


def uninterpreted(name: str) -> UninterpretedSort:
    """Return (or intern) the uninterpreted sort with the given name."""
    return UninterpretedSort(name)
