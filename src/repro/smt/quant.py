"""Quantifier instantiation: trigger selection and E-matching.

Two trigger-selection policies model the design axis §3.1 of the paper
identifies as decisive for large-project verification performance:

* ``CONSERVATIVE`` (Verus): as few triggers as possible — the smallest
  uninterpreted subterms that jointly cover the bound variables.  Fewer
  instantiations, better scalability, occasionally requires the developer
  to supply a trigger explicitly.
* ``BROAD`` (Dafny-like): every maximal uninterpreted subterm mentioning a
  bound variable becomes a trigger.  More proofs complete "by luck", but
  instantiation counts — and solver time — blow up on big contexts.

E-matching searches the congruence closure's e-graph for substitutions that
make a pattern equal (modulo congruence) to an existing term.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from . import terms as T
from .euf import EufSolver

CONSERVATIVE = "conservative"
BROAD = "broad"

# Fallback kinds reported through ``select_triggers(on_fallback=...)``.
FALLBACK_BROAD_TO_CONSERVATIVE = "broad_to_conservative"
FALLBACK_MULTI_PATTERN = "multi_pattern_group"


class TriggerError(Exception):
    """No usable trigger could be inferred for a quantifier."""


def _is_pattern_candidate(t: T.Term, bound: frozenset) -> bool:
    """A pattern must be an uninterpreted application mentioning a bound var.

    Interpreted operators (arithmetic, boolean) are not matchable — the same
    restriction real solvers impose.
    """
    return (t.kind == T.APP and bool(t.free_vars() & bound)
            and not _contains_interpreted_root(t))


def _contains_interpreted_root(t: T.Term) -> bool:
    # Patterns may contain interpreted subterms only below uninterpreted
    # function applications; we only exclude interpreted ops at the ROOT.
    return t.kind != T.APP


def select_triggers(quant: T.Term, policy: str = CONSERVATIVE,
                    on_fallback: Optional[Callable[[str], None]] = None
                    ) -> tuple[tuple[T.Term, ...], ...]:
    """Choose trigger groups for a FORALL; explicit triggers win.

    ``on_fallback`` is invoked (with a fallback-kind string) whenever the
    selection silently degrades: the BROAD policy found no covering group
    and fell through to conservative selection
    (``FALLBACK_BROAD_TO_CONSERVATIVE``), or no single pattern covers all
    bound variables and a brittle multi-pattern group had to be built
    (``FALLBACK_MULTI_PATTERN``).  The solver counts these in
    ``Stats.trigger_fallbacks`` so the QI profiler and the static
    matching-loop lint can surface them instead of losing them.
    """
    if quant.triggers:
        return quant.triggers
    bound = frozenset(quant.bound_vars)
    body = quant.body
    candidates: list[T.Term] = []
    seen = set()
    for sub in body.subterms():
        if sub in seen:
            continue
        seen.add(sub)
        if _is_pattern_candidate(sub, bound):
            candidates.append(sub)
    if not candidates:
        raise TriggerError(
            f"no trigger found for quantifier over "
            f"{[v.payload for v in quant.bound_vars]}")

    if policy == BROAD:
        # Dafny-style: every maximal candidate is its own (partial) trigger;
        # combine greedily with others to cover all bound vars.
        maximal = [c for c in candidates
                   if not any(c is not d and c in set(d.subterms())
                              for d in candidates)]
        groups = []
        for c in maximal:
            covered = c.free_vars() & bound
            group = [c]
            for d in candidates:
                if covered >= bound:
                    break
                extra = d.free_vars() & bound
                if extra - covered:
                    group.append(d)
                    covered |= extra
            if covered >= bound:
                groups.append(tuple(group))
        if groups:
            return tuple(groups)
        # fall through to conservative if nothing covers
        if on_fallback is not None:
            on_fallback(FALLBACK_BROAD_TO_CONSERVATIVE)

    # Conservative: each *minimal* pattern covering all bound vars becomes
    # its own alternative trigger (one would be too brittle — it may have
    # no ground seeds); otherwise build one minimal multi-pattern group.
    full = [c for c in candidates if (c.free_vars() & bound) >= bound]
    if full:
        full_set = set(full)
        minimal = [c for c in full
                   if not any(d is not c and d in set(c.subterms())
                              for d in full_set)]
        return tuple((c,) for c in (minimal or full))
    if on_fallback is not None:
        on_fallback(FALLBACK_MULTI_PATTERN)
    candidates.sort(key=lambda c: c.size())
    group: list[T.Term] = []
    covered: frozenset = frozenset()
    for c in candidates:
        extra = c.free_vars() & bound
        if extra - covered:
            group.append(c)
            covered |= extra
        if covered >= bound:
            return (tuple(group),)
    raise TriggerError(
        f"bound variables {[v.payload for v in bound - covered]} "
        f"not covered by any pattern")


class EMatcher:
    """Match trigger patterns against an e-graph to produce substitutions.

    Two operating modes:

    * **naive** (``incremental=False``): every :meth:`match_group` call
      rebuilds the apps-by-decl index from a full e-graph scan and matches
      every candidate — the reference behavior.
    * **incremental** (default): candidates come from the e-graph's
      persistent :meth:`~repro.smt.euf.EufSolver.apps_of` index (no scan),
      and a per-group watermark — ``(merge count, apps count per pattern
      decl)`` — lets a repeat call skip work: if nothing changed the group
      is skipped outright; if only new apps arrived (no merges) a
      single-pattern group matches just the candidates past the watermark.
      With no intervening merges old candidates reproduce byte-identical
      substitutions (class memberships are unchanged, new terms sit in
      singleton classes), so the delta scan yields the same instantiation
      set the naive mode would.

    ``index_hits`` counts match calls served by the persistent index;
    ``rescans_avoided`` counts calls answered from the watermark without
    touching any candidate.
    """

    __slots__ = ("euf", "incremental", "_apps_by_decl", "_bound",
                 "_group_state", "index_hits", "rescans_avoided")

    def __init__(self, euf: EufSolver, incremental: bool = True):
        self.euf = euf
        self.incremental = incremental
        self._apps_by_decl: Optional[dict] = None
        self._bound: frozenset = frozenset()
        # (group, bound) -> (num_merges, apps-count-per-pattern) watermark.
        self._group_state: dict[tuple, tuple] = {}
        self.index_hits = 0
        self.rescans_avoided = 0

    def _index(self) -> dict:
        apps: dict[T.FuncDecl, list[T.Term]] = {}
        for t in self.euf.all_terms():
            if t.kind == T.APP:
                apps.setdefault(t.payload, []).append(t)
        return apps

    def match_group(self, group: Iterable[T.Term], bound: tuple,
                    state_key=None) -> list[dict[T.Term, T.Term]]:
        """All substitutions matching every pattern in the group.

        In incremental mode, repeat calls may return only the substitutions
        new since the previous call (old ones are exact duplicates the
        solver's instance dedup would discard anyway).  ``state_key``
        namespaces the watermark — callers matching the same group on
        behalf of different consumers (e.g. two quantifiers sharing a
        trigger) must pass distinct keys so each gets the full result.
        """
        group = tuple(group)
        if not self.incremental:
            self._apps_by_decl = self._index()
            return self._match_all(group, bound)
        self._apps_by_decl = self.euf._apps_by_decl
        key = (state_key, group, bound)
        merges = self.euf.num_merges
        counts = tuple(len(self._apps_by_decl.get(p.payload, ()))
                       for p in group)
        state = self._group_state.get(key)
        self._group_state[key] = (merges, counts)
        if state is not None and state[0] == merges:
            # No merges since the last scan: old candidates reproduce the
            # exact substitutions they produced before.
            if state[1] == counts:
                self.rescans_avoided += 1
                return []
            if len(group) == 1:
                self.index_hits += 1
                return self._match_delta(group, bound, state[1][0])
            # Multi-pattern groups may pair an old candidate of one pattern
            # with a new candidate of another: full rescan.
        self.index_hits += 1
        return self._match_all(group, bound)

    def _match_all(self, group: tuple, bound: tuple) -> list[dict]:
        subs: list[dict[T.Term, T.Term]] = [{}]
        self._bound = frozenset(bound)
        for pattern in group:
            new_subs: list[dict] = []
            for sub in subs:
                new_subs.extend(self._match_pattern(pattern, sub))
            subs = new_subs
            if not subs:
                return []
        return self._complete(subs, bound)

    def _match_delta(self, group: tuple, bound: tuple, watermark: int
                     ) -> list[dict]:
        """Match a single-pattern group against candidates past the
        watermark only."""
        pattern = group[0]
        self._bound = frozenset(bound)
        subs: list[dict] = []
        candidates = self._apps_by_decl.get(pattern.payload, ())
        for candidate in candidates[watermark:]:
            subs.extend(self._match(pattern, candidate, {}))
        return self._complete(subs, bound) if subs else []

    def _complete(self, subs: list, bound: tuple) -> list[dict]:
        bound_set = set(bound)
        complete = []
        seen_keys = set()
        for s in subs:
            if set(s) >= bound_set:
                key = tuple(self.euf.find(s[v]) for v in bound)
                if key not in seen_keys:
                    seen_keys.add(key)
                    complete.append(s)
        return complete

    def _match_pattern(self, pattern: T.Term, sub: dict) -> list[dict]:
        out = []
        for candidate in self._apps_by_decl.get(pattern.payload, ()):
            # _match/_match_args copy-on-bind, so sharing `sub` is safe —
            # no defensive copy on branches that add no binding.
            out.extend(self._match(pattern, candidate, sub))
        return out

    def _match(self, pattern: T.Term, term: T.Term, sub: dict) -> list[dict]:
        """Match a pattern against a concrete term modulo congruence."""
        if pattern.kind == T.VAR and pattern in self._bound:
            if pattern in sub:
                return [sub] if self.euf.are_equal(sub[pattern], term) else []
            sub = dict(sub)
            sub[pattern] = term
            return [sub]
        if not pattern.args:
            return [sub] if self.euf.are_equal(pattern, term) else []
        if pattern.kind != T.APP:
            # Interpreted operator inside a pattern: require syntactic kind
            # match on some class member.
            results = []
            for member in self.euf.class_of(term):
                if member.kind == pattern.kind and len(member.args) == len(pattern.args):
                    results.extend(self._match_args(pattern.args, member.args, sub))
            return results
        results = []
        for member in self.euf.class_of(term):
            if member.kind == T.APP and member.payload is pattern.payload:
                results.extend(self._match_args(pattern.args, member.args, sub))
        return results

    def _match_args(self, pargs, targs, sub) -> list[dict]:
        subs = [sub]
        for p, a in zip(pargs, targs):
            next_subs = []
            for s in subs:
                if p.kind == T.VAR and p in self._bound:
                    bound_val = s.get(p)
                    if bound_val is None:
                        s2 = dict(s)
                        s2[p] = a
                        next_subs.append(s2)
                    elif self.euf.are_equal(bound_val, a):
                        next_subs.append(s)
                elif p.args and p.kind == T.APP:
                    for member in self.euf.class_of(a):
                        if member.kind == T.APP and member.payload is p.payload:
                            next_subs.extend(self._match_args(p.args, member.args, s))
                elif p.args:
                    for member in self.euf.class_of(a):
                        if member.kind == p.kind and len(member.args) == len(p.args):
                            next_subs.extend(self._match_args(p.args, member.args, s))
                else:
                    if self.euf.are_equal(p, a):
                        next_subs.append(s)
            subs = next_subs
            if not subs:
                break
        return subs
