"""repro.smt — a from-scratch SMT stack standing in for Z3.

Submodules:

* :mod:`~repro.smt.terms`, :mod:`~repro.smt.sorts` — hash-consed term core
* :mod:`~repro.smt.sat` — CDCL SAT solver
* :mod:`~repro.smt.euf` — congruence closure with explanations
* :mod:`~repro.smt.lia` — simplex + branch-and-bound linear integer arithmetic
* :mod:`~repro.smt.bitvec` — bit-blaster (``by(bit_vector)``)
* :mod:`~repro.smt.ring` — Gröbner-based ``by(integer_ring)``
* :mod:`~repro.smt.nonlinear` — ``by(nonlinear_arith)`` heuristics
* :mod:`~repro.smt.compute` — ``by(compute)`` symbolic interpreter
* :mod:`~repro.smt.quant` — trigger selection + E-matching
* :mod:`~repro.smt.solver` — the DPLL(T) core
* :mod:`~repro.smt.printer` — SMT-LIB2 output and query-size metrics
"""

from .solver import SAT, UNKNOWN, UNSAT, SmtSolver, SolverConfig
from .quant import BROAD, CONSERVATIVE

__all__ = [
    "SAT", "UNSAT", "UNKNOWN", "SmtSolver", "SolverConfig",
    "BROAD", "CONSERVATIVE",
]
