"""SMT-LIB2-style printing of terms and queries.

Besides debugging, the printer is the measurement instrument for the paper's
"SMT (MB)" column (Figure 9): :func:`query_size_bytes` reports the byte size
of the full textual query a pipeline ships to the solver, so encoding economy
is directly observable.
"""

from __future__ import annotations

from . import terms as T


def term_to_str(t: T.Term) -> str:
    """Render a term in SMT-LIB2 concrete syntax."""
    k = t.kind
    if k == T.VAR:
        return t.payload
    if k == T.BOOL_CONST:
        return "true" if t.payload else "false"
    if k == T.INT_CONST:
        v = t.payload
        return str(v) if v >= 0 else f"(- {-v})"
    if k == T.BV_CONST:
        return f"(_ bv{t.payload} {t.sort.width})"
    if k == T.APP:
        if not t.args:
            return t.payload.name
        return f"({t.payload.name} {' '.join(term_to_str(a) for a in t.args)})"
    if k in T.QUANT_KINDS:
        bound = " ".join(f"({v.payload} {v.sort})" for v in t.payload[0])
        body = term_to_str(t.args[0])
        if t.payload[1]:
            pats = " ".join(
                f":pattern ({' '.join(term_to_str(p) for p in grp)})"
                for grp in t.payload[1])
            return f"({k} ({bound}) (! {body} {pats}))"
        return f"({k} ({bound}) {body})"
    if k == T.NEG:
        return f"(- {term_to_str(t.args[0])})"
    return f"({k} {' '.join(term_to_str(a) for a in t.args)})"


def declarations(assertions) -> list[str]:
    """Collect SMT-LIB declarations for all sorts/constants/functions used."""
    sorts: dict[str, T.Sort] = {}
    consts: dict[tuple, T.Term] = {}
    funcs: dict[T.FuncDecl, None] = {}
    for a in assertions:
        for sub in a.subterms():
            if sub.sort.is_uninterpreted():
                sorts[sub.sort.name] = sub.sort
            if sub.kind == T.VAR:
                consts[(sub.payload, sub.sort)] = sub
            elif sub.kind == T.APP:
                funcs[sub.payload] = None
                for s in sub.payload.arg_sorts:
                    if s.is_uninterpreted():
                        sorts[s.name] = s
    lines = [f"(declare-sort {name} 0)" for name in sorted(sorts)]
    bound = set()
    for a in assertions:
        for sub in a.subterms():
            if sub.is_quant():
                bound.update(sub.payload[0])
    for (name, sort), v in sorted(consts.items(), key=lambda kv: kv[0][0]):
        if v not in bound:
            lines.append(f"(declare-const {name} {sort})")
    for f in sorted(funcs, key=lambda f: f.name):
        args = " ".join(str(s) for s in f.arg_sorts)
        lines.append(f"(declare-fun {f.name} ({args}) {f.ret_sort})")
    return lines


def query_to_smtlib(assertions, logic: str = "ALL") -> str:
    """Render a full (set-logic .. check-sat) script for the assertions."""
    lines = [f"(set-logic {logic})"]
    lines.extend(declarations(assertions))
    for a in assertions:
        lines.append(f"(assert {term_to_str(a)})")
    lines.append("(check-sat)")
    return "\n".join(lines)


def query_size_bytes(assertions) -> int:
    """Byte size of the textual query — the paper's 'SMT (MB)' metric."""
    return len(query_to_smtlib(assertions).encode())
