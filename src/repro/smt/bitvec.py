"""Bit-vector decision procedure by bit-blasting to the CDCL SAT solver.

This is the engine behind Verus's ``assert(...) by (bit_vector)``: the
assertion is translated into a pure bit-vector formula (integers reinterpreted
as fixed-width vectors), negated, blasted to CNF, and refuted.  Per §3.3 of
the paper the query is *isolated* — no ambient context leaks in, which is
exactly what makes these proofs stable.

Supported operations: bvand/or/xor/not, bvadd/sub/mul, bvudiv/urem (via the
multiplication relation), bvshl/lshr (constant rewiring or barrel shifter),
bvule/ult, equality, and full boolean structure.
"""

from __future__ import annotations

from typing import Optional

from . import terms as T
from .sat import SatSolver, lit, neg


class BitBlaster:
    """Translate a BV/bool formula into CNF over a SatSolver."""

    def __init__(self):
        self.sat = SatSolver()
        self._bool_cache: dict[T.Term, int] = {}
        self._bits_cache: dict[T.Term, list[int]] = {}
        self._true_lit: Optional[int] = None

    # -- primitive gates ------------------------------------------------------

    def _new_lit(self) -> int:
        return lit(self.sat.new_var())

    def true_lit(self) -> int:
        if self._true_lit is None:
            self._true_lit = self._new_lit()
            self.sat.add_clause([self._true_lit])
        return self._true_lit

    def false_lit(self) -> int:
        return neg(self.true_lit())

    def gate_and(self, a: int, b: int) -> int:
        o = self._new_lit()
        self.sat.add_clause([neg(o), a])
        self.sat.add_clause([neg(o), b])
        self.sat.add_clause([o, neg(a), neg(b)])
        return o

    def gate_or(self, a: int, b: int) -> int:
        return neg(self.gate_and(neg(a), neg(b)))

    def gate_xor(self, a: int, b: int) -> int:
        o = self._new_lit()
        self.sat.add_clause([neg(o), a, b])
        self.sat.add_clause([neg(o), neg(a), neg(b)])
        self.sat.add_clause([o, neg(a), b])
        self.sat.add_clause([o, a, neg(b)])
        return o

    def gate_iff(self, a: int, b: int) -> int:
        return neg(self.gate_xor(a, b))

    def gate_ite(self, c: int, t: int, e: int) -> int:
        o = self._new_lit()
        self.sat.add_clause([neg(c), neg(t), o])
        self.sat.add_clause([neg(c), t, neg(o)])
        self.sat.add_clause([c, neg(e), o])
        self.sat.add_clause([c, e, neg(o)])
        return o

    def gate_big_and(self, lits: list[int]) -> int:
        if not lits:
            return self.true_lit()
        o = lits[0]
        for l in lits[1:]:
            o = self.gate_and(o, l)
        return o

    # -- arithmetic circuits ------------------------------------------------------

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        s = self.gate_xor(self.gate_xor(a, b), cin)
        cout = self.gate_or(self.gate_and(a, b),
                            self.gate_and(cin, self.gate_xor(a, b)))
        return s, cout

    def add_bits(self, xs: list[int], ys: list[int],
                 carry_in: Optional[int] = None) -> list[int]:
        carry = carry_in if carry_in is not None else self.false_lit()
        out = []
        for a, b in zip(xs, ys):
            s, carry = self._full_adder(a, b, carry)
            out.append(s)
        return out

    def negate_bits(self, xs: list[int]) -> list[int]:
        inv = [neg(x) for x in xs]
        one = [self.true_lit()] + [self.false_lit()] * (len(xs) - 1)
        return self.add_bits(inv, one)

    def mul_bits(self, xs: list[int], ys: list[int]) -> list[int]:
        width = len(xs)
        acc = [self.false_lit()] * width
        for i, y in enumerate(ys):
            partial = ([self.false_lit()] * i +
                       [self.gate_and(x, y) for x in xs[: width - i]])
            acc = self.add_bits(acc, partial)
        return acc

    def ule_bits(self, xs: list[int], ys: list[int]) -> int:
        """xs <= ys unsigned (bit 0 = LSB)."""
        le = self.true_lit()
        for a, b in zip(xs, ys):  # LSB to MSB
            # le' = (a < b) | (a == b) & le  with a<b == ~a & b
            lt = self.gate_and(neg(a), b)
            eq = self.gate_iff(a, b)
            le = self.gate_or(lt, self.gate_and(eq, le))
        return le

    def ult_bits(self, xs: list[int], ys: list[int]) -> int:
        return neg(self.ule_bits(ys, xs))

    def eq_bits(self, xs: list[int], ys: list[int]) -> int:
        return self.gate_big_and([self.gate_iff(a, b) for a, b in zip(xs, ys)])

    def shift_bits(self, xs: list[int], ys: list[int], left: bool) -> list[int]:
        """Barrel shifter; shift amounts >= width produce zero."""
        width = len(xs)
        cur = list(xs)
        for stage in range(len(ys)):
            amount = 1 << stage
            sel = ys[stage]
            shifted = []
            for i in range(width):
                src = i - amount if left else i + amount
                bit = cur[src] if 0 <= src < width else self.false_lit()
                shifted.append(self.gate_ite(sel, bit, cur[i]))
            cur = shifted
            if amount >= width:
                # Any set bit beyond this stage zeroes everything.
                rest = ys[stage + 1:]
                if rest:
                    any_high = rest[0]
                    for r in rest[1:]:
                        any_high = self.gate_or(any_high, r)
                    cur = [self.gate_and(c, neg(any_high)) for c in cur]
                break
        return cur

    # -- term translation --------------------------------------------------------

    def bits(self, t: T.Term) -> list[int]:
        """Bit literals (LSB first) for a BV-sorted term."""
        cached = self._bits_cache.get(t)
        if cached is not None:
            return cached
        width = t.sort.width
        k = t.kind
        if k == T.BV_CONST:
            v = t.payload
            out = [self.true_lit() if (v >> i) & 1 else self.false_lit()
                   for i in range(width)]
        elif k in (T.VAR, T.APP):
            out = [self._new_lit() for _ in range(width)]
        elif k == T.BVNOT:
            out = [neg(b) for b in self.bits(t.args[0])]
        elif k in (T.BVAND, T.BVOR, T.BVXOR):
            xs, ys = self.bits(t.args[0]), self.bits(t.args[1])
            gate = {T.BVAND: self.gate_and, T.BVOR: self.gate_or,
                    T.BVXOR: self.gate_xor}[k]
            out = [gate(a, b) for a, b in zip(xs, ys)]
        elif k == T.BVADD:
            out = self.add_bits(self.bits(t.args[0]), self.bits(t.args[1]))
        elif k == T.BVSUB:
            out = self.add_bits(self.bits(t.args[0]),
                                [neg(b) for b in self.bits(t.args[1])],
                                carry_in=self.true_lit())
        elif k == T.BVMUL:
            out = self.mul_bits(self.bits(t.args[0]), self.bits(t.args[1]))
        elif k in (T.BVUDIV, T.BVUREM):
            out = self._divrem(t)
        elif k == T.BVSHL:
            out = self.shift_bits(self.bits(t.args[0]), self.bits(t.args[1]), True)
        elif k == T.BVLSHR:
            out = self.shift_bits(self.bits(t.args[0]), self.bits(t.args[1]), False)
        elif k == T.ITE:
            c = self.blit(t.args[0])
            xs, ys = self.bits(t.args[1]), self.bits(t.args[2])
            out = [self.gate_ite(c, a, b) for a, b in zip(xs, ys)]
        else:
            raise ValueError(f"bit_vector mode cannot handle term kind {k}: {t!r}")
        self._bits_cache[t] = out
        return out

    def _divrem(self, t: T.Term) -> list[int]:
        """Encode udiv/urem via a = b*q + r, r < b (b != 0); x/0 = ones, x%0 = x."""
        a, b = t.args
        width = t.sort.width
        key_q = T.Term(T.APP, t.sort, (a, b),
                       T.FuncDecl("_bvq", [a.sort, b.sort], t.sort))
        key_r = T.Term(T.APP, t.sort, (a, b),
                       T.FuncDecl("_bvr", [a.sort, b.sort], t.sort))
        if key_q not in self._bits_cache:
            qb = [self._new_lit() for _ in range(width)]
            rb = [self._new_lit() for _ in range(width)]
            self._bits_cache[key_q] = qb
            self._bits_cache[key_r] = rb
            ab, bb = self.bits(a), self.bits(b)
            b_nonzero = bb[0]
            for x in bb[1:]:
                b_nonzero = self.gate_or(b_nonzero, x)
            # Widen to 2w to rule out overflow in b*q + r.
            w2 = width * 2
            f = self.false_lit()
            ab2, bb2, qb2, rb2 = (xs + [f] * width for xs in (ab, bb, qb, rb))
            prod = self.mul_bits(bb2, qb2)[:w2]
            total = self.add_bits(prod, rb2)
            ok = self.gate_and(self.eq_bits(total, ab2),
                               self.ult_bits(rb, bb))
            # b == 0 cases per SMT-LIB: q = all ones, r = a.
            q_ones = self.eq_bits(qb, [self.true_lit()] * width)
            r_is_a = self.eq_bits(rb, ab)
            zero_ok = self.gate_and(q_ones, r_is_a)
            self.sat.add_clause([neg(b_nonzero), ok])
            self.sat.add_clause([b_nonzero, zero_ok])
        return self._bits_cache[key_q if t.kind == T.BVUDIV else key_r]

    def blit(self, t: T.Term) -> int:
        """SAT literal for a bool-sorted term."""
        cached = self._bool_cache.get(t)
        if cached is not None:
            return cached
        k = t.kind
        if t is T.TRUE:
            out = self.true_lit()
        elif t is T.FALSE:
            out = self.false_lit()
        elif k == T.NOT:
            out = neg(self.blit(t.args[0]))
        elif k == T.AND:
            out = self.gate_big_and([self.blit(a) for a in t.args])
        elif k == T.OR:
            out = neg(self.gate_big_and([neg(self.blit(a)) for a in t.args]))
        elif k == T.IMPLIES:
            out = self.gate_or(neg(self.blit(t.args[0])), self.blit(t.args[1]))
        elif k == T.EQ:
            a = t.args[0]
            if a.sort.is_bv():
                out = self.eq_bits(self.bits(t.args[0]), self.bits(t.args[1]))
            elif a.sort.is_bool():
                out = self.gate_iff(self.blit(t.args[0]), self.blit(t.args[1]))
            else:
                raise ValueError(f"bit_vector mode: equality over {a.sort}")
        elif k == T.BVULE:
            out = self.ule_bits(self.bits(t.args[0]), self.bits(t.args[1]))
        elif k == T.BVULT:
            out = self.ult_bits(self.bits(t.args[0]), self.bits(t.args[1]))
        elif k == T.VAR:
            out = self._new_lit()
        else:
            raise ValueError(f"bit_vector mode cannot handle boolean kind {k}: {t!r}")
        self._bool_cache[t] = out
        return out


def bv_check_sat(formula: T.Term, conflict_budget: Optional[int] = None
                 ) -> Optional[bool]:
    """Decide satisfiability of a pure BV/bool formula.

    Returns True/False, or None if the SAT budget ran out.
    """
    blaster = BitBlaster()
    root = blaster.blit(formula)
    blaster.sat.add_clause([root])
    return blaster.sat.solve(conflict_budget=conflict_budget)


def bv_model(formula: T.Term) -> Optional[dict[T.Term, int]]:
    """A satisfying assignment for the formula's BV variables, or None."""
    blaster = BitBlaster()
    root = blaster.blit(formula)
    blaster.sat.add_clause([root])
    if blaster.sat.solve() is not True:
        return None
    model = blaster.sat.model()
    out = {}
    for t, bits in blaster._bits_cache.items():
        if t.kind == T.VAR:
            val = 0
            for i, b in enumerate(bits):
                if model[b >> 1] == ((b & 1) == 0):
                    val |= 1 << i
            out[t] = val
    return out
