"""``by(nonlinear_arith)``: isolated nonlinear integer arithmetic queries.

Verus's design (§3.3): nonlinear goals are *not* mixed into the main query;
each assertion spawns an isolated query containing only the premises the
developer wrote, making the heuristics far more predictable.

Our heuristic engine is a degree-2 Positivstellensatz approximation:

1. every arithmetic atom is normalized to a polynomial over *monomial
   variables* (canonical product terms treated as opaque by LIA),
2. lemmas are synthesized — squares are non-negative, products of
   non-negative premises are non-negative, premises multiplied by square
   monomials keep their sign,
3. the premises, the negated goal, and the lemmas go to the ordinary
   DPLL(T) core; UNSAT means the goal is proved.

Sound by construction (every lemma is a valid implication); incomplete, as
all nonlinear reasoning must be.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from . import terms as T
from .ring import Monomial, Poly, p_add, p_const, p_mul, p_neg, p_sub, p_var
from .solver import SmtSolver, SolverConfig, UNSAT
from .sorts import INT


class _PolyView:
    """Polynomial normal form of int terms, with opaque atoms tracked."""

    def __init__(self):
        self.atoms: dict[str, T.Term] = {}       # poly var name -> term
        self._atom_name: dict[T.Term, str] = {}  # term -> poly var name

    def to_poly(self, t: T.Term) -> Poly:
        k = t.kind
        if k == T.INT_CONST:
            return p_const(t.payload)
        if k == T.ADD:
            out: Poly = {}
            for a in t.args:
                out = p_add(out, self.to_poly(a))
            return out
        if k == T.SUB:
            return p_sub(self.to_poly(t.args[0]), self.to_poly(t.args[1]))
        if k == T.NEG:
            return p_neg(self.to_poly(t.args[0]))
        if k == T.MUL:
            return p_mul(self.to_poly(t.args[0]), self.to_poly(t.args[1]))
        # VAR / APP / IDIV / IMOD: opaque polynomial variable.
        name = self._atom_name.get(t)
        if name is None:
            name = f"@{len(self.atoms)}"
            self.atoms[name] = t
            self._atom_name[t] = name
        return p_var(name)

    def mono_term(self, m: Monomial) -> Optional[T.Term]:
        """Canonical Term for a monomial (None for the unit monomial)."""
        factors: list[T.Term] = []
        for name, exp in m:
            base = self.atoms[name]
            factors.extend([base] * exp)
        if not factors:
            return None
        factors.sort(key=lambda t: t._hash)
        out = factors[0]
        for f in factors[1:]:
            out = T.Term(T.MUL, INT, (out, f)) if out.kind != T.INT_CONST \
                else T.Mul(out, f)
        return out

    def poly_term(self, p: Poly) -> T.Term:
        """Rebuild a Term (sum of canonical monomials) from a polynomial."""
        parts: list[T.Term] = []
        const = 0
        for m, c in p.items():
            if c.denominator != 1:
                raise ValueError("non-integer coefficient in nonlinear lemma")
            mono = self.mono_term(m)
            if mono is None:
                const += int(c)
            else:
                parts.append(T.Mul(T.IntVal(int(c)), mono)
                             if c != 1 else mono)
        if const or not parts:
            parts.append(T.IntVal(const))
        return T.Add(*parts) if len(parts) > 1 else parts[0]


def _ge0_forms(premise: T.Term, view: _PolyView) -> list[tuple[Poly, bool]]:
    """Normalize a premise to `poly >= 0` forms (strict flag kept).

    a <= b  ->  b - a >= 0 ; a < b -> b - a - 1 >= 0 (ints) ;
    a == b  ->  both directions.
    """
    k = premise.kind
    if k == T.LE:
        return [(p_sub(view.to_poly(premise.args[1]),
                       view.to_poly(premise.args[0])), False)]
    if k == T.LT:
        p = p_sub(view.to_poly(premise.args[1]), view.to_poly(premise.args[0]))
        return [(p_add(p, p_const(-1)), False)]
    if k == T.EQ and premise.args[0].sort is INT:
        d = p_sub(view.to_poly(premise.args[0]), view.to_poly(premise.args[1]))
        return [(d, False), (p_neg(d), False)]
    if k == T.NOT:
        inner = premise.args[0]
        if inner.kind == T.LE:
            return _ge0_forms(T.Lt(inner.args[1], inner.args[0]), view)
        if inner.kind == T.LT:
            return _ge0_forms(T.Le(inner.args[1], inner.args[0]), view)
    return []


def nonlinear_lemmas(premises: list[T.Term], goal: T.Term,
                     max_products: int = 60) -> list[T.Term]:
    """Synthesize valid nonlinear lemmas for the isolated query."""
    view = _PolyView()
    forms: list[Poly] = []
    for p in premises:
        forms.extend(f for f, _ in _ge0_forms(p, view))
    # Normalize the goal too so its monomials are registered.
    for f, _ in _ge0_forms(goal, view):
        pass
    _register_goal_monomials(goal, view)

    lemmas: list[T.Term] = []

    # 1. Squares are non-negative: for every atom x, x*x >= 0.
    seen_sq: set[T.Term] = set()
    for name in list(view.atoms):
        sq = view.mono_term(((name, 2),))
        if sq is not None and sq not in seen_sq:
            seen_sq.add(sq)
            lemmas.append(T.Ge(sq, T.IntVal(0)))

    # 2. Products of non-negative premises are non-negative.
    count = 0
    n = len(forms)
    for i in range(n):
        for j in range(i, n):
            if count >= max_products:
                break
            prod = p_mul(forms[i], forms[j])
            try:
                lemma_term = view.poly_term(prod)
            except ValueError:
                continue
            lemmas.append(T.Implies(
                T.And(_poly_ge0(forms[i], view), _poly_ge0(forms[j], view)),
                T.Ge(lemma_term, T.IntVal(0))))
            count += 1

    # 3. Premises multiplied by squares keep their sign.
    for f in forms:
        for sq_name in list(view.atoms):
            prod = p_mul(f, {((sq_name, 2),): Fraction(1)})
            try:
                lemma_term = view.poly_term(prod)
            except ValueError:
                continue
            lemmas.append(T.Implies(_poly_ge0(f, view),
                                    T.Ge(lemma_term, T.IntVal(0))))

    # 4. Squares of atom differences/sums: (a-b)^2 >= 0 and (a+b)^2 >= 0,
    #    expanded — these supply the cross terms AM-GM-style goals need.
    names = sorted(view.atoms)
    pair_count = 0
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if pair_count >= max_products:
                break
            pair_count += 1
            pa, pb = p_var(names[i]), p_var(names[j])
            for diff in (p_sub(pa, pb), p_add(pa, pb)):
                sq = p_mul(diff, diff)
                try:
                    lemmas.append(T.Ge(view.poly_term(sq), T.IntVal(0)))
                except ValueError:
                    continue
    return lemmas


def _poly_ge0(p: Poly, view: _PolyView) -> T.Term:
    return T.Ge(view.poly_term(p), T.IntVal(0))


def _register_goal_monomials(goal: T.Term, view: _PolyView) -> None:
    for sub in goal.subterms():
        if sub.sort is INT:
            view.to_poly(sub)


def normalize_formula(t: T.Term, view: _PolyView) -> T.Term:
    """Rewrite every arithmetic atom into polynomial normal form.

    This connects the query's nonlinear subterms (which LIA treats as
    opaque) with the canonical monomials the synthesized lemmas mention —
    e.g. ``(a*a + 1) * q`` becomes ``a*a*q + q``.
    """
    k = t.kind
    if k in (T.LE, T.LT) or (k == T.EQ and t.args[0].sort is INT):
        a = view.poly_term(view.to_poly(t.args[0]))
        b = view.poly_term(view.to_poly(t.args[1]))
        return {T.LE: T.Le, T.LT: T.Lt, T.EQ: T.Eq}[k](a, b)
    if k in (T.NOT, T.AND, T.OR, T.IMPLIES) or (k == T.EQ and
                                                t.args[0].sort is T.TRUE.sort):
        new_args = tuple(normalize_formula(a, view) for a in t.args)
        if new_args == t.args:
            return t
        return T._rebuild(t, new_args)
    return t


def _split_implications(goal: T.Term, premises: list[T.Term]) -> T.Term:
    """Move implication antecedents into the premises.

    `assert(p ==> q) by(nonlinear_arith)` is the paper's idiom for giving
    the isolated query its context; the antecedent is the developer-supplied
    premise, the consequent is the real goal.
    """
    while goal.kind == T.IMPLIES:
        antecedent = goal.args[0]
        if antecedent.kind == T.AND:
            premises.extend(antecedent.args)
        else:
            premises.append(antecedent)
        goal = goal.args[1]
    return goal


def prove_nonlinear(premises: list[T.Term], goal: T.Term,
                    config: Optional[SolverConfig] = None) -> bool:
    """Prove `premises ==> goal` in an isolated nonlinear query."""
    premises = list(premises)
    goal = _split_implications(goal, premises)
    view = _PolyView()
    solver = SmtSolver(config or SolverConfig(max_rounds=40))
    norm_premises = [normalize_formula(p, view) for p in premises]
    norm_goal = normalize_formula(goal, view)
    for p in norm_premises:
        solver.add(p)
    for lemma in nonlinear_lemmas(norm_premises, norm_goal):
        solver.add(lemma)
    solver.add(T.Not(norm_goal))
    return solver.check() == UNSAT
