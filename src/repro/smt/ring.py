"""``by(integer_ring)``: ideal-membership decision for ring congruences.

Verus dispatches proof goals built from ``+ - * %`` and constant
exponentiation — "integer ring congruence relations" — to a dedicated
algebraic engine (the paper cites Singular-style approaches [50, 51]).
We implement the same decision:

* every hypothesis of the form ``e % m == 0`` contributes the polynomial
  ``e - m*k`` (``k`` fresh) to an ideal basis; ``a == b`` contributes
  ``a - b``,
* the goal ``g % m == 0`` (or ``a == b``) is valid if the corresponding
  polynomial is a member of the generated ideal,
* membership is decided by reduction against a Gröbner basis computed with
  Buchberger's algorithm over ℚ (graded-lex order).

This engine is *trusted* in the same sense as the paper's: the main SMT
encoding simply assumes its verdicts.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from . import terms as T

# A monomial is a tuple of (var_name, exponent) pairs, sorted by name.
# A polynomial maps monomials to non-zero Fraction coefficients.

Monomial = tuple
Poly = dict


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    out = dict(a)
    for v, e in b:
        out[v] = out.get(v, 0) + e
    return tuple(sorted((v, e) for v, e in out.items() if e))


def _mono_div(a: Monomial, b: Monomial) -> Optional[Monomial]:
    out = dict(a)
    for v, e in b:
        ne = out.get(v, 0) - e
        if ne < 0:
            return None
        out[v] = ne
    return tuple(sorted((v, e) for v, e in out.items() if e))


def _mono_deg(m: Monomial) -> int:
    return sum(e for _, e in m)


class _MonoKey:
    """Graded-lexicographic order key.

    Total degree first; ties broken lexicographically on exponent vectors
    with alphabetically-earlier variables taking priority.  Unlike a naive
    tuple comparison, this IS a monomial order (compatible with monomial
    multiplication), which the division algorithm's termination requires.
    """

    __slots__ = ("m", "deg")

    def __init__(self, m: Monomial):
        self.m = m
        self.deg = _mono_deg(m)

    def __lt__(self, other: "_MonoKey") -> bool:
        if self.deg != other.deg:
            return self.deg < other.deg
        ea, eb = dict(self.m), dict(other.m)
        # Reverse-alphabetical priority puts user variables ('a', 'x', ...)
        # above the '_k*' fresh multipliers, so reduction eliminates user
        # variables in favor of the multipliers — what congruence proofs need.
        for v in sorted(set(ea) | set(eb), reverse=True):
            xa, xb = ea.get(v, 0), eb.get(v, 0)
            if xa != xb:
                return xa < xb
        return False


def _mono_key(m: Monomial) -> _MonoKey:
    return _MonoKey(m)


def p_zero() -> Poly:
    return {}


def p_const(c) -> Poly:
    c = Fraction(c)
    return {(): c} if c else {}


def p_var(name: str) -> Poly:
    return {((name, 1),): Fraction(1)}


def p_add(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for m, c in b.items():
        nc = out.get(m, Fraction(0)) + c
        if nc:
            out[m] = nc
        else:
            out.pop(m, None)
    return out


def p_neg(a: Poly) -> Poly:
    return {m: -c for m, c in a.items()}


def p_sub(a: Poly, b: Poly) -> Poly:
    return p_add(a, p_neg(b))


def p_mul(a: Poly, b: Poly) -> Poly:
    out: Poly = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            m = _mono_mul(ma, mb)
            nc = out.get(m, Fraction(0)) + ca * cb
            if nc:
                out[m] = nc
            else:
                out.pop(m, None)
    return out


def p_scale(a: Poly, k) -> Poly:
    k = Fraction(k)
    if not k:
        return {}
    return {m: c * k for m, c in a.items()}


def _leading(p: Poly) -> tuple[Monomial, Fraction]:
    m = max(p, key=_mono_key)
    return m, p[m]


def reduce_poly(p: Poly, basis: list[Poly]) -> Poly:
    """Multivariate division: the remainder of p modulo the basis."""
    p = dict(p)
    remainder: Poly = {}
    guard = 0
    while p:
        guard += 1
        if guard > 20000:
            break  # give up; caller treats nonzero remainder as 'not proved'
        lm, lc = _leading(p)
        divided = False
        for g in basis:
            gm, gc = _leading(g)
            q = _mono_div(lm, gm)
            if q is not None:
                factor = {q: lc / gc}
                p = p_sub(p, p_mul(factor, g))
                divided = True
                break
        if not divided:
            nc = remainder.get(lm, Fraction(0)) + lc
            if nc:
                remainder[lm] = nc
            else:
                remainder.pop(lm, None)
            del p[lm]
    return remainder


def _s_poly(f: Poly, g: Poly) -> Poly:
    fm, fc = _leading(f)
    gm, gc = _leading(g)
    lcm = _mono_mul(fm, _mono_div_total(gm, fm))
    uf = {_mono_div(lcm, fm): Fraction(1) / fc}
    ug = {_mono_div(lcm, gm): Fraction(1) / gc}
    return p_sub(p_mul(uf, f), p_mul(ug, g))


def _mono_div_total(a: Monomial, b: Monomial) -> Monomial:
    """max(a - b, 0) componentwise, so that b * result = lcm(a, b) / ... ."""
    out = dict(a)
    for v, e in b:
        out[v] = max(out.get(v, 0) - e, 0)
    return tuple(sorted((v, e) for v, e in out.items() if e))


def groebner(generators: list[Poly], max_pairs: int = 4000) -> list[Poly]:
    """Buchberger's algorithm (graded-lex, no fancy criteria)."""
    basis = [g for g in generators if g]
    pairs = [(i, j) for i in range(len(basis)) for j in range(i + 1, len(basis))]
    processed = 0
    while pairs:
        processed += 1
        if processed > max_pairs:
            break  # partial basis: reduction stays sound, just less complete
        i, j = pairs.pop()
        s = _s_poly(basis[i], basis[j])
        r = reduce_poly(s, basis)
        if r:
            basis.append(r)
            new_idx = len(basis) - 1
            pairs.extend((k, new_idx) for k in range(new_idx))
    return basis


class RingError(Exception):
    """The goal is not expressible in the integer-ring fragment."""


def term_to_poly(t: T.Term, fresh: list[int]) -> Poly:
    """Translate a +,-,*,% term over int into a polynomial.

    ``a % m`` is translated as ``a - m*k`` with ``k`` fresh — sound for
    congruence goals (both sides of the congruence absorb multiples of m).
    """
    k = t.kind
    if k == T.INT_CONST:
        return p_const(t.payload)
    if k == T.VAR:
        return p_var(t.payload)
    if k == T.ADD:
        out = p_zero()
        for a in t.args:
            out = p_add(out, term_to_poly(a, fresh))
        return out
    if k == T.SUB:
        return p_sub(term_to_poly(t.args[0], fresh),
                     term_to_poly(t.args[1], fresh))
    if k == T.NEG:
        return p_neg(term_to_poly(t.args[0], fresh))
    if k == T.MUL:
        return p_mul(term_to_poly(t.args[0], fresh),
                     term_to_poly(t.args[1], fresh))
    if k == T.IMOD:
        a = term_to_poly(t.args[0], fresh)
        m = term_to_poly(t.args[1], fresh)
        fresh[0] += 1
        kvar = p_var(f"_k{fresh[0]}")
        return p_sub(a, p_mul(m, kvar))
    raise RingError(f"not a ring term: {t!r}")


def _hypothesis_poly(eq: T.Term, fresh: list[int]) -> Poly:
    """Polynomial generator for a hypothesis equality.

    In a hypothesis, ``a % m`` legitimately becomes ``a - m*k`` with ``k``
    fresh: the hypothesis *witnesses* the multiplier, so ``k`` may be used
    freely during reduction.
    """
    if eq.kind == T.EQ and eq.args[0].sort.is_int():
        return p_sub(term_to_poly(eq.args[0], fresh),
                     term_to_poly(eq.args[1], fresh))
    raise RingError(f"integer_ring handles equalities only: {eq!r}")


def _goal_congruence(goal: T.Term) -> tuple[T.Term, Optional[T.Term]]:
    """Normalize the goal to (expression, modulus-or-None).

    Accepted forms: ``e % m == 0``, ``0 == e % m``, ``e1 % m == e2 % m``
    (same modulus), and plain ``e1 == e2`` (modulus None). The goal's own
    ``%`` multiplier is *existential*, so it cannot become a free ideal
    variable — instead we prove divisibility of the reduced remainder.
    """
    if goal.kind != T.EQ or not goal.args[0].sort.is_int():
        raise RingError(f"integer_ring handles equalities only: {goal!r}")
    lhs, rhs = goal.args

    def split(t):
        if t.kind == T.IMOD:
            return t.args[0], t.args[1]
        return t, None

    le, lm = split(lhs)
    re_, rm = split(rhs)
    if lm is None and rm is None:
        return T.Sub(lhs, rhs), None
    if lm is not None and rm is not None:
        if lm is not rm:
            raise RingError("congruence goal must use a single modulus")
        return T.Sub(le, re_), lm
    if lm is not None and rhs.kind == T.INT_CONST and rhs.payload == 0:
        return le, lm
    if rm is not None and lhs.kind == T.INT_CONST and lhs.payload == 0:
        return re_, rm
    raise RingError(f"unsupported integer_ring goal shape: {goal!r}")


def _divisible(remainder: Poly, modulus: T.Term, gens: list[Poly],
               fresh: list[int]) -> bool:
    """Is the remainder polynomial a multiple of the modulus?"""
    if not remainder:
        return True
    if modulus.kind == T.INT_CONST:
        m = modulus.payload
        if m == 0:
            return False
        return all(c.denominator == 1 and int(c) % m == 0
                   for c in remainder.values())
    mod_poly = term_to_poly(modulus, fresh)
    basis = groebner(gens + [mod_poly])
    return not reduce_poly(remainder, basis)


def prove_ring(hypotheses: list[T.Term], goal: T.Term) -> bool:
    """Decide a ring congruence: hypotheses ⊢ goal.

    All terms are built from +,-,*,% and constants over int variables;
    hypotheses and goal are equalities (``e % m == 0`` is the idiomatic
    congruence form).  Sound; complete on the congruence fragment the
    paper's examples use.
    """
    fresh = [0]
    gens = [_hypothesis_poly(h, fresh) for h in hypotheses]
    expr, modulus = _goal_congruence(goal)
    goal_poly = term_to_poly(expr, fresh)
    basis = groebner(gens) if gens else []
    remainder = reduce_poly(goal_poly, basis) if basis else goal_poly
    if not remainder:
        return True
    if modulus is None:
        return False
    return _divisible(remainder, modulus, gens, fresh)
