"""Congruence closure (EUF theory solver) with explanation generation.

The e-graph treats *every* compound term as a function application — not just
uninterpreted ``APP`` nodes but also interpreted operators like ``+`` — which
is sound (they are functions) and maximizes equality propagation between
theories.  Interpreted *evaluation* is someone else's job (LIA, bit-blaster).

Explanations use the Nieuwenhuis–Oliveras proof forest: every union edge is
labeled either with an input reason (an opaque tag supplied by the caller,
typically a SAT literal) or with a congruence justification, and
:meth:`EufSolver.explain` recursively expands congruence edges into the set
of input reasons.  Explanations drive strong theory lemmas in the DPLL(T)
loop.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from . import terms as T


class EufConflict(Exception):
    """Raised when the asserted literals are EUF-unsatisfiable.

    ``reasons`` is the set of input reason tags whose conjunction is
    contradictory.
    """

    def __init__(self, reasons: frozenset):
        super().__init__(f"EUF conflict from {len(reasons)} reasons")
        self.reasons = reasons


_CONGRUENCE = "congruence"


class EufSolver:
    """Incremental congruence closure over hash-consed terms."""

    __slots__ = ("_repr", "_rank", "_members", "_use", "_sigs",
                 "_proof_edge", "_diseqs", "_pending", "num_merges",
                 "_frames", "_apps_by_decl")

    def __init__(self):
        self._repr: dict[T.Term, T.Term] = {}          # union-find parent
        self._rank: dict[T.Term, int] = {}
        self._members: dict[T.Term, list[T.Term]] = {}  # repr -> class members
        self._use: dict[T.Term, list[T.Term]] = {}      # repr -> parent apps
        self._sigs: dict[tuple, T.Term] = {}            # signature -> app term
        # Proof forest: node -> (neighbor, label); label is an input reason
        # tag or a (_CONGRUENCE, a, b) triple.
        self._proof_edge: dict[T.Term, tuple] = {}
        self._diseqs: list[tuple[T.Term, T.Term, Hashable]] = []
        self._pending: list[tuple] = []
        self.num_merges = 0
        # Undo log: one op list per open push(); ops are replayed in reverse
        # by pop().  Empty when the solver is used non-incrementally, in
        # which case no logging overhead is paid.
        self._frames: list[list[tuple]] = []
        # Persistent E-matching index: uninterpreted applications grouped by
        # declaration, in registration order (the same order a scan of
        # :meth:`all_terms` would visit them).  Maintained by add_term and
        # restored by the "term" undo op, so it survives push/pop exactly.
        self._apps_by_decl: dict[T.FuncDecl, list[T.Term]] = {}

    # -- incremental scopes ---------------------------------------------------

    def push(self) -> None:
        """Open a scope; every structural change after this is undoable.

        Queued congruences are flushed first so the checkpoint is a closed
        state (may raise :class:`EufConflict`).
        """
        self.flush()
        self._frames.append([])

    def pop(self, n: int = 1) -> None:
        """Undo every change made in the ``n`` innermost scopes."""
        for _ in range(n):
            ops = self._frames.pop()
            for op in reversed(ops):
                self._undo(op)
        # Anything still queued was discovered under the popped frames.
        self._pending.clear()

    def commit(self) -> None:
        """Close the innermost scope, keeping its changes.

        The ops are folded into the parent frame (or dropped if this was the
        outermost frame), so an enclosing pop() still undoes them.
        """
        ops = self._frames.pop()
        if self._frames:
            self._frames[-1].extend(ops)

    def _undo(self, op: tuple) -> None:
        tag = op[0]
        if tag == "merge":
            _, ra, rb, old_members, moved_use, rank_bumped, sigs, proof = op
            for node, old in reversed(proof):
                if old is None:
                    del self._proof_edge[node]
                else:
                    self._proof_edge[node] = old
            for sig in reversed(sigs):
                del self._sigs[sig]
            if moved_use:
                del self._use[rb][-len(moved_use):]
            self._use[ra] = moved_use
            if rank_bumped:
                self._rank[rb] -= 1
            del self._members[rb][-len(old_members):]
            self._members[ra] = old_members
            for m in old_members:
                self._repr[m] = ra
            self.num_merges -= 1
        elif tag == "term":
            t = op[1]
            del self._repr[t]
            del self._rank[t]
            del self._members[t]
            del self._use[t]
            if t.kind == T.APP:
                # Ops replay in reverse registration order, so t is always
                # the most recent app of its declaration.
                self._apps_by_decl[t.payload].pop()
        elif tag == "use":
            op[1].pop()
        elif tag == "sig":
            del self._sigs[op[1]]
        elif tag == "diseq":
            self._diseqs.pop()

    # -- registration ---------------------------------------------------------

    def add_term(self, t: T.Term) -> None:
        """Register a term (and its subterms) in the e-graph.

        Registration may discover congruences with existing terms; they are
        queued and merged by the next :meth:`assert_eq`/:meth:`flush` call.
        """
        if t in self._repr:
            return
        for a in t.args:
            if not t.is_quant():
                self.add_term(a)
        if t in self._repr:  # can happen through recursion
            return
        self._repr[t] = t
        self._rank[t] = 0
        self._members[t] = [t]
        self._use[t] = []
        if t.kind == T.APP:
            self._apps_by_decl.setdefault(t.payload, []).append(t)
        log = self._frames[-1] if self._frames else None
        if log is not None:
            log.append(("term", t))
        if t.args and not t.is_quant():
            for a in t.args:
                use = self._use[self.find(a)]
                use.append(t)
                if log is not None:
                    log.append(("use", use))
            self._insert_sig(t)

    def _signature(self, t: T.Term) -> tuple:
        return (t.kind, t.payload, tuple(self.find(a) for a in t.args))

    def _insert_sig(self, t: T.Term) -> None:
        sig = self._signature(t)
        other = self._sigs.get(sig)
        if other is None:
            self._sigs[sig] = t
            if self._frames:
                self._frames[-1].append(("sig", sig))
        elif self.find(other) is not self.find(t):
            self._pending.append((t, other, (_CONGRUENCE, t, other)))

    # -- union-find -------------------------------------------------------------

    def find(self, t: T.Term) -> T.Term:
        r = self._repr
        root = t
        while r[root] is not root:
            root = r[root]
        while r[t] is not root:
            r[t], t = root, r[t]
        return root

    def are_equal(self, a: T.Term, b: T.Term) -> bool:
        if a not in self._repr or b not in self._repr:
            return a is b
        return self.find(a) is self.find(b)

    # -- assertions --------------------------------------------------------------

    def assert_eq(self, a: T.Term, b: T.Term, reason: Hashable) -> None:
        """Assert a = b with an opaque reason tag; may raise EufConflict."""
        self.add_term(a)
        self.add_term(b)
        self._pending.append((a, b, reason))
        self._process_pending()
        self._check_diseqs()

    def flush(self) -> None:
        """Process queued congruences from term registration; may conflict."""
        self._process_pending()
        self._check_diseqs()

    def assert_neq(self, a: T.Term, b: T.Term, reason: Hashable) -> None:
        """Assert a != b; may raise EufConflict immediately."""
        self.add_term(a)
        self.add_term(b)
        self._process_pending()  # registration may have queued congruences
        self._diseqs.append((a, b, reason))
        if self._frames:
            self._frames[-1].append(("diseq",))
        if self.find(a) is self.find(b):
            raise EufConflict(frozenset([reason]) | self.explain(a, b))

    def _process_pending(self) -> None:
        while self._pending:
            a, b, label = self._pending.pop()
            ra, rb = self.find(a), self.find(b)
            if ra is rb:
                continue
            self._check_value_clash(ra, rb, a, b, label)
            self.num_merges += 1
            # Union by rank; keep the constant (if any) as representative so
            # model extraction is easy.
            if self._is_value(ra) or (self._rank[ra] >= self._rank[rb]
                                      and not self._is_value(rb)):
                ra, rb = rb, ra
                a, b = b, a
            # now ra is merged INTO rb
            logging = bool(self._frames)
            proof_log: list[tuple] = []
            self._add_proof_edge(a, b, label,
                                 proof_log if logging else None)
            old_members = self._members.pop(ra)
            for m in old_members:
                self._repr[m] = rb
            self._members[rb].extend(old_members)
            rank_bumped = self._rank[ra] == self._rank[rb]
            if rank_bumped:
                self._rank[rb] += 1
            # Recompute signatures of parents of the absorbed class.
            sig_log: list[tuple] = []
            moved_use = self._use.pop(ra)
            for parent in moved_use:
                sig = self._signature(parent)
                other = self._sigs.get(sig)
                if other is None:
                    self._sigs[sig] = parent
                    if logging:
                        sig_log.append(sig)
                elif self.find(other) is not self.find(parent):
                    self._pending.append(
                        (parent, other, (_CONGRUENCE, parent, other)))
            self._use[rb].extend(moved_use)
            if logging:
                self._frames[-1].append(
                    ("merge", ra, rb, old_members, moved_use, rank_bumped,
                     sig_log, proof_log))

    def _is_value(self, t: T.Term) -> bool:
        return t.is_const()

    def _check_value_clash(self, ra, rb, a, b, label) -> None:
        if self._is_value(ra) and self._is_value(rb) and ra.payload != rb.payload:
            # Merging two distinct constants: conflict. Build the explanation
            # through the edge being added.
            reasons = self._label_reasons(label)
            reasons |= self.explain(a, ra)
            reasons |= self.explain(b, rb)
            raise EufConflict(frozenset(reasons))

    def _check_diseqs(self) -> None:
        for a, b, reason in self._diseqs:
            if self.find(a) is self.find(b):
                raise EufConflict(frozenset([reason]) | self.explain(a, b))

    # -- proof forest ---------------------------------------------------------------

    def _add_proof_edge(self, a: T.Term, b: T.Term, label,
                        undo: Optional[list] = None) -> None:
        # Reroot a's proof tree so `a` becomes its root, then hang it off b.
        path = []
        node = a
        while node in self._proof_edge:
            nxt, lbl = self._proof_edge[node]
            path.append((node, nxt, lbl))
            node = nxt
        for x, y, lbl in reversed(path):
            if undo is not None:
                undo.append((y, self._proof_edge.get(y)))
            self._proof_edge[y] = (x, lbl)
        if undo is not None:
            undo.append((a, self._proof_edge.get(a)))
        if a in self._proof_edge:
            del self._proof_edge[a]
        self._proof_edge[a] = (b, label)

    def explain(self, a: T.Term, b: T.Term) -> frozenset:
        """Input reason tags whose conjunction implies a = b."""
        out: set = set()
        self._explain_into(a, b, out, set())
        return frozenset(out)

    def _explain_into(self, a: T.Term, b: T.Term, out: set, seen: set) -> None:
        if a is b:
            return
        key = (a, b) if a._hash <= b._hash else (b, a)
        if key in seen:
            return  # already expanded into `out`
        seen.add(key)
        # Ancestors of a in the proof forest (a's tree contains b since they
        # are in the same congruence class).
        ancestors = {a}
        cur = a
        while cur in self._proof_edge:
            cur = self._proof_edge[cur][0]
            ancestors.add(cur)
        lca = b
        while lca not in ancestors:
            lca = self._proof_edge[lca][0]
        for start in (a, b):
            cur = start
            while cur is not lca:
                nxt, label = self._proof_edge[cur]
                self._collect_label(label, out, seen)
                cur = nxt

    def _collect_label(self, label, out: set, seen: set) -> None:
        if isinstance(label, tuple) and len(label) == 3 and label[0] is _CONGRUENCE:
            _, t1, t2 = label
            for x, y in zip(t1.args, t2.args):
                self._explain_into(x, y, out, seen)
        else:
            out.add(label)

    def _label_reasons(self, label) -> set:
        out: set = set()
        self._collect_label(label, out, set())
        return out

    # -- queries for E-matching / models -----------------------------------------------

    def classes(self) -> Iterable[list[T.Term]]:
        return self._members.values()

    def class_of(self, t: T.Term) -> list[T.Term]:
        return self._members[self.find(t)]

    def all_terms(self) -> Iterable[T.Term]:
        return self._repr.keys()

    def apps_of(self, decl: T.FuncDecl) -> list[T.Term]:
        """Registered applications of ``decl``, in registration order.

        This is the persistent E-matching index: the same list a fresh
        scan of :meth:`all_terms` would build, without the scan.
        """
        return self._apps_by_decl.get(decl, [])

    def value_of(self, t: T.Term) -> Optional[T.Term]:
        """The constant in t's class, if any (representatives prefer values)."""
        if t not in self._repr:
            return t if t.is_const() else None
        r = self.find(t)
        return r if r.is_const() else None

    def representative(self, t: T.Term) -> T.Term:
        """A readable canonical member of t's congruence class.

        Model export for diagnostics: prefer a constant if the class has
        one, otherwise the smallest member (ties broken by hash so the
        choice is deterministic across runs and processes).
        """
        if t not in self._repr:
            return t
        val = self.value_of(t)
        if val is not None:
            return val
        return min(self.class_of(t), key=lambda m: (m.size(), m._hash))
