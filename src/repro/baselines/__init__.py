"""Baseline verifier pipelines (§4.1): dafny/fstar/creusot/prusti/ivy."""

from .pipelines import (PIPELINES, CreusotPipeline, DafnyPipeline,
                        FStarPipeline, IvyPipeline, Pipeline, PrustiPipeline,
                        Unsupported, VerusPipeline, time_pipeline)

__all__ = ["PIPELINES", "Pipeline", "VerusPipeline", "DafnyPipeline",
           "FStarPipeline", "CreusotPipeline", "PrustiPipeline",
           "IvyPipeline", "Unsupported", "time_pipeline"]
