"""Explicit-heap encoding, as used by Dafny/F*/Prusti-style verifiers.

Verus leans on Rust ownership so collections are plain SMT values.  Tools
without an ownership type system must encode the *heap*: every collection
variable becomes a reference, reads go through ``read(H, r)``, writes
produce a new heap ``write(H, r, v)``, and knowing that *other* objects
are unaffected requires instantiating quantified *frame axioms* — one
chain per intervening write.  This file implements that encoding on top
of the shared WP engine; it is what makes the Figure 7 gaps appear for
structural (not artificial) reasons: the solver genuinely performs the
aliasing reasoning the paper attributes to Dafny and Low*.
"""

from __future__ import annotations

from typing import Optional

from ..smt import terms as T
from ..smt.sorts import INT as SINT, uninterpreted
from ..vc import ast as A
from ..vc import types as VT
from ..vc.wp import VcGen, _ExprTranslator, _FnCtx, _State

HEAP = uninterpreted("Heap")


def _is_heap_type(vtype: VT.VType) -> bool:
    # Sequences, maps, and structs (Dafny classes) live on the heap;
    # scalars and enum datatypes are values in both encodings.
    return isinstance(vtype, (VT.SeqType, VT.MapType, VT.StructType))


class HeapExprTranslator(_ExprTranslator):
    """Reads of heap-allocated variables go through read(H, ref)."""

    def _is_ref(self, name: str, env: dict, vtype: VT.VType) -> bool:
        # Guard against name collisions with callee parameters bound to
        # values: only treat as a reference when the env really holds one.
        term = env.get(name)
        return (name in self.ctx.heap_refs and term is not None
                and term.sort is SINT and _is_heap_type(vtype))

    def _tr_VarE(self, e: A.VarE) -> T.Term:
        if self._is_ref(e.name, self.env, e.vtype):
            return self.ctx.heap_read(e.vtype, self.env["$heap"],
                                      self.env[e.name])
        return super()._tr_VarE(e)

    def _tr_Old(self, e: A.Old) -> T.Term:
        if self._is_ref(e.name, self.old_env, e.vtype):
            return self.ctx.heap_read(e.vtype, self.old_env["$heap"],
                                      self.old_env[e.name])
        return super()._tr_Old(e)


class HeapFnCtx(_FnCtx):
    """Per-function symbolic execution with an explicit heap."""

    TRANSLATOR_CLS = HeapExprTranslator

    def __init__(self, gen, fn, encoder):
        super().__init__(gen, fn, encoder)
        self.heap_refs: set[str] = set()
        self._all_refs: list[T.Term] = []
        self._ref_counter = [0]
        self._heap_fn_tags: set[str] = set()

    # -- heap vocabulary ------------------------------------------------------

    def heap_read(self, vtype: VT.VType, heap: T.Term, ref: T.Term) -> T.Term:
        tag = self._tag(vtype)
        return self.encoder.fn(f"heap.read.{tag}", [HEAP, SINT],
                               self.encoder.sort_of(vtype))(heap, ref)

    def heap_write(self, vtype: VT.VType, heap: T.Term, ref: T.Term,
                   value: T.Term) -> T.Term:
        tag = self._tag(vtype)
        return self.encoder.fn(f"heap.write.{tag}",
                               [HEAP, SINT, self.encoder.sort_of(vtype)],
                               HEAP)(heap, ref, value)

    def _tag(self, vtype: VT.VType) -> str:
        tag = (vtype.name.replace("<", "_").replace(">", "")
               .replace(",", "_"))
        if tag not in self._heap_fn_tags:
            self._heap_fn_tags.add(tag)
            self._emit_heap_axioms(vtype, tag)
        return tag

    def _emit_heap_axioms(self, vtype: VT.VType, tag: str) -> None:
        s = self.encoder.sort_of(vtype)
        read = self.encoder.fn(f"heap.read.{tag}", [HEAP, SINT], s)
        write = self.encoder.fn(f"heap.write.{tag}", [HEAP, SINT, s], HEAP)
        h = T.Var("hp!h", HEAP)
        r, r2 = T.Var("hp!r", SINT), T.Var("hp!r2", SINT)
        v = T.Var("hp!v", s)
        w = write(h, r, v)
        # Select-of-store.
        self.encoder.axioms.append(
            T.ForAll([h, r, v], T.Eq(read(w, r), v), triggers=[[w]]))
        # Frame axiom: the source of aliasing reasoning cost.  The trigger
        # matches every read over every write, so refuting interference
        # walks the whole write chain.
        self.encoder.axioms.append(
            T.ForAll([h, r, v, r2],
                     T.Implies(T.Ne(r, r2), T.Eq(read(w, r2), read(h, r2))),
                     triggers=[[read(w, r2)]]))
        # Cross-type frames: a write at one type never changes reads at
        # another (typed references are disjoint).
        for other_tag, other_sort in list(self._cross_types(tag)):
            oread = self.encoder.fn(f"heap.read.{other_tag}", [HEAP, SINT],
                                    other_sort)
            self.encoder.axioms.append(
                T.ForAll([h, r, v, r2],
                         T.Eq(oread(w, r2), oread(h, r2)),
                         triggers=[[oread(w, r2)]]))
            owrite_args = [HEAP, SINT, other_sort]
            owrite = self.encoder.fn(f"heap.write.{other_tag}", owrite_args,
                                     HEAP)
            ov = T.Var(f"hp!ov!{other_tag}", other_sort)
            ow = owrite(h, r, ov)
            self.encoder.axioms.append(
                T.ForAll([h, r, ov, r2],
                         T.Eq(read(ow, r2), read(h, r2)),
                         triggers=[[read(ow, r2)]]))
        self._sorts_by_tag = getattr(self, "_sorts_by_tag", {})
        self._sorts_by_tag[tag] = s

    def _cross_types(self, new_tag: str):
        sorts = getattr(self, "_sorts_by_tag", {})
        for tag, sort in sorts.items():
            if tag != new_tag:
                yield tag, sort

    def _alloc_ref(self, name: str, state_assumptions: list) -> T.Term:
        self._ref_counter[0] += 1
        ref = T.Var(f"ref!{self.fn.name}!{name}!{self._ref_counter[0]}", SINT)
        for other in self._all_refs:
            state_assumptions.append(T.Ne(ref, other))
        self._all_refs.append(ref)
        return ref

    # -- engine hooks ------------------------------------------------------------

    def setup_params(self, env: dict, assumptions: list) -> None:
        heap0 = T.Var(f"heap0!{self.fn.name}", HEAP)
        env["$heap"] = heap0
        for p in self.fn.params:
            if _is_heap_type(p.vtype):
                ref = self._alloc_ref(p.name, assumptions)
                env[p.name] = ref
                self.heap_refs.add(p.name)
            else:
                v = T.Var(f"{self.fn.name}!{p.name}",
                          self.encoder.sort_of(p.vtype))
                env[p.name] = v
                rng = self.encoder.range_assumption(p.vtype, v)
                if rng is not None:
                    assumptions.append(rng)

    def assign_var(self, state: _State, name: str, term: T.Term,
                   vtype: VT.VType) -> None:
        if _is_heap_type(vtype):
            ref = state.env.get(name)
            if name not in self.heap_refs or ref is None:
                ref = self._alloc_ref(name, state.assumptions)
                self.heap_refs.add(name)
            state.env[name] = ref
            state.env["$heap"] = self.heap_write(
                vtype, state.env["$heap"], ref, term)
            self._local_types.setdefault(name, vtype)
        else:
            super().assign_var(state, name, term, vtype)

    def _havoc(self, state: _State, names: set[str]) -> None:
        heap_touched = any(n in self.heap_refs for n in names)
        scalar_names = {n for n in names if n not in self.heap_refs}
        super()._havoc(state, scalar_names)
        if heap_touched:
            fresh = T.Var(self.gen.fresh("havoc!heap"), HEAP)
            state.env["$heap"] = fresh


class HeapVcGen(VcGen):
    """VcGen with the explicit-heap encoding."""

    CTX_CLS = HeapFnCtx
