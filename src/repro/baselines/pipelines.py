"""Verification pipelines modeling the §4.1 comparison frameworks.

Each pipeline runs the *same* module AST through the same underlying
solver, differing exactly along the axes the paper identifies:

================= ========== ========== ========= ==========================
pipeline          encoding   triggers   pruning   extra behavior
================= ========== ========== ========= ==========================
verus             value      conserv.   yes       —
dafny             heap       broad      no        —
fstar (Low*)      heap       broad      no        fat Seq library context;
                                                  fuel-retry on failure
creusot           value      broad      no        solver racing; exhausts
                                                  the portfolio on failure
prusti            heap       broad      no        per-statement permission
                                                  re-checks; no cyclic refs
ivy               value      (MBQI)     yes       EPR only — rejects
                                                  anything else
================= ========== ========== ========= ==========================

The wall-clock differences the millibenchmarks report therefore arise from
*structural* causes (frame axioms, instantiation blowup, extra obligations),
not from hard-coded slowdowns.
"""

from __future__ import annotations

import time
from typing import Optional

from ..epr import EprError, check_epr_module, verify_epr_module
from ..smt import terms as T
from ..smt.quant import BROAD, CONSERVATIVE
from ..smt.solver import SolverConfig
from ..smt.sorts import INT as SINT
from ..vc import ast as A
from ..vc import types as VT
from ..vc.encode import Encoder
from ..vc.errors import ModuleResult, PROVED
from ..vc.wp import VcConfig, VcGen, _PendingObligation, _State
from .heap import HEAP, HeapFnCtx, HeapVcGen, _is_heap_type


class Unsupported(Exception):
    """The pipeline cannot express this program (e.g. cyclic pointers)."""


class Pipeline:
    """A named verification pipeline."""

    name = "abstract"

    def verify(self, module: A.Module) -> ModuleResult:
        raise NotImplementedError

    def __repr__(self):
        return f"<Pipeline {self.name}>"


class VerusPipeline(Pipeline):
    name = "verus"

    def __init__(self, config: Optional[VcConfig] = None):
        self.config = config or VcConfig()

    def verify(self, module: A.Module) -> ModuleResult:
        return VcGen(module, self.config).verify_module()


def _heap_config() -> VcConfig:
    """Heap pipelines need generous budgets: frame-axiom chains make their
    queries genuinely harder — they should succeed *slowly*, not fail."""
    return VcConfig(
        trigger_policy=BROAD, prune_context=False,
        solver_config=SolverConfig(trigger_policy=BROAD, max_rounds=240,
                                   max_instantiations=24000))


class DafnyPipeline(Pipeline):
    """Heap encoding + broad triggers + whole-context queries."""

    name = "dafny"

    def verify(self, module: A.Module) -> ModuleResult:
        return HeapVcGen(module, _heap_config()).verify_module()


# ---------------------------------------------------------------------------
# F* / Low*
# ---------------------------------------------------------------------------

class FStarVcGen(HeapVcGen):
    """Heap encoding + the fat FStar.Seq-style lemma context + fuel retry."""

    LIB_LEMMAS_EMITTED = "_fstar_lib_done"

    def context_axioms(self, encoder: Encoder, spec_axioms: list):
        base = super().context_axioms(encoder, spec_axioms)
        return base + _seq_library_lemmas(encoder)

    def _solve_obligation(self, item, encoder, spec_axioms,
                          solver_config=None):
        base_config = self.config.make_solver_config()
        status, stats, qbytes = super()._solve_obligation(
            item, encoder, spec_axioms, base_config)
        if status == PROVED:
            return status, stats, qbytes
        # F*'s fuel-retry loop: failed queries re-run with more fuel.
        total_q = qbytes
        for fuel_factor in (2, 4):
            retry = SolverConfig(
                trigger_policy=base_config.trigger_policy,
                max_rounds=base_config.max_rounds,
                max_instantiations=base_config.max_instantiations
                * fuel_factor)
            status, stats, qbytes = super()._solve_obligation(
                item, encoder, spec_axioms, retry)
            total_q += qbytes
            if status == PROVED:
                break
        return status, stats, total_q


def _seq_library_lemmas(encoder: Encoder) -> list[T.Term]:
    """Valid derived Seq lemmas, mirroring FStar.Seq's fat axiom set.

    Every lemma is a logical consequence of the core Seq axioms, so adding
    them is sound; their broad applicability multiplies E-matching work —
    the structural reason Low* queries are the largest in Figure 7.
    """
    lemmas: list[T.Term] = []
    for key in list(encoder._axiom_keys):
        if not (isinstance(key, tuple) and key[0] == "seq"):
            continue
        tag = key[1]
        # Recover the function declarations by name from the cache.
        def get(name, args, ret):
            return encoder.fn(f"{tag}.{name}", args, ret)
        # Find the sorts from an existing decl.
        len_decl = next((d for k, d in encoder._decl_cache.items()
                         if k[0] == f"{tag}.len"), None)
        idx_decl = next((d for k, d in encoder._decl_cache.items()
                         if k[0] == f"{tag}.index"), None)
        if len_decl is None or idx_decl is None:
            continue
        s = len_decl.arg_sorts[0]
        e = idx_decl.ret_sort
        ln = len_decl
        ix = idx_decl
        upd = encoder.fn(f"{tag}.update", [s, SINT, e], s)
        cat = encoder.fn(f"{tag}.concat", [s, s], s)
        a, b, c = T.Var("fs!a", s), T.Var("fs!b", s), T.Var("fs!c", s)
        i, j = T.Var("fs!i", SINT), T.Var("fs!j", SINT)
        v, w = T.Var("fs!v", e), T.Var("fs!w", e)
        zero = T.IntVal(0)
        lemmas.extend([
            # double update at the same index collapses
            T.ForAll([a, i, v, w],
                     T.Eq(ln(upd(upd(a, i, v), i, w)), ln(a)),
                     triggers=[[upd(upd(a, i, v), i, w)]]),
            # length of triple concat associates
            T.ForAll([a, b, c],
                     T.Eq(ln(cat(cat(a, b), c)),
                          T.Add(ln(a), ln(b), ln(c))),
                     triggers=[[cat(cat(a, b), c)]]),
            # reading a concat's left side commutes with update on right
            T.ForAll([a, b, i, j, v],
                     T.Implies(T.And(T.Le(zero, i), T.Lt(i, ln(a))),
                               T.Eq(ix(cat(upd(a, j, v), b), i),
                                    ix(upd(a, j, v), i))),
                     triggers=[[ix(cat(upd(a, j, v), b), i)]]),
            # update does not change length, concat form
            T.ForAll([a, b, i, v],
                     T.Eq(ln(cat(upd(a, i, v), b)),
                          T.Add(ln(a), ln(b))),
                     triggers=[[cat(upd(a, i, v), b)]]),
            # index within bounds is itself after identity update
            T.ForAll([a, i, j],
                     T.Implies(
                         T.And(T.Le(zero, i), T.Lt(i, ln(a)),
                               T.Le(zero, j), T.Lt(j, ln(a))),
                         T.Eq(ix(upd(a, j, ix(a, j)), i), ix(a, i))),
                     triggers=[[ix(upd(a, j, ix(a, j)), i)]]),
        ])
    return lemmas


class FStarPipeline(Pipeline):
    name = "fstar"

    def verify(self, module: A.Module) -> ModuleResult:
        return FStarVcGen(module, _heap_config()).verify_module()


# ---------------------------------------------------------------------------
# Creusot
# ---------------------------------------------------------------------------

class CreusotVcGen(VcGen):
    """Value encoding (ownership-based, like Verus) but broad triggers and
    a Why3-style prover portfolio: race a quick configuration against a
    thorough one; failures must exhaust the whole portfolio."""

    PORTFOLIO = (
        dict(max_rounds=12, max_instantiations=400),
        dict(max_rounds=60, max_instantiations=6000),
        dict(max_rounds=90, max_instantiations=12000),
    )

    def _solve_obligation(self, item, encoder, spec_axioms,
                          solver_config=None):
        total_q = 0
        last = None
        for entry in self.PORTFOLIO:
            config = SolverConfig(trigger_policy=BROAD, **entry)
            status, stats, qbytes = super()._solve_obligation(
                item, encoder, spec_axioms, config)
            total_q += qbytes
            last = (status, stats)
            if status == PROVED:
                return status, stats, total_q
        return last[0], last[1], total_q


class CreusotPipeline(Pipeline):
    name = "creusot"

    def verify(self, module: A.Module) -> ModuleResult:
        if module.attrs_get("uses_cyclic"):
            # Creusot handles this via unsafe-free encodings but needs
            # manual intervention (the * footnote in Figure 7a); we model
            # it as a slower full-portfolio verification.
            pass
        config = VcConfig(trigger_policy=BROAD, prune_context=False)
        return CreusotVcGen(module, config).verify_module()


# ---------------------------------------------------------------------------
# Prusti
# ---------------------------------------------------------------------------

class PrustiFnCtx(HeapFnCtx):
    """Heap encoding plus Viper-style permission re-verification.

    Prusti re-proves what rustc's borrow checker already knows: before
    every statement it exhales/inhales access permissions for the
    references the statement touches.  We model this with an uninterpreted
    ``perm(Heap, ref)`` predicate: assumed for all refs at entry, framed
    across writes by a quantified axiom, and *checked* before each access.
    """

    def setup_params(self, env, assumptions):
        super().setup_params(env, assumptions)
        perm = self.encoder.fn("heap.perm", [HEAP, SINT],
                               T.TRUE.sort)
        h = T.Var("pm!h", HEAP)
        r = T.Var("pm!r", SINT)
        # all permissions granted at entry
        assumptions.append(
            T.ForAll([r], perm(env["$heap"], r),
                     triggers=[[perm(env["$heap"], r)]]))
        self._perm = perm

    def _emit_heap_axioms(self, vtype, tag):
        super()._emit_heap_axioms(vtype, tag)
        # Permissions are preserved by writes (framing for perm).
        s = self.encoder.sort_of(vtype)
        write = self.encoder.fn(f"heap.write.{tag}", [HEAP, SINT, s], HEAP)
        perm = self.encoder.fn("heap.perm", [HEAP, SINT], T.TRUE.sort)
        h = T.Var("pm!h", HEAP)
        r, r2 = T.Var("pm!r", SINT), T.Var("pm!r2", SINT)
        v = T.Var(f"pm!v!{tag}", s)
        self.encoder.axioms.append(
            T.ForAll([h, r, v, r2],
                     T.Eq(perm(write(h, r, v), r2), perm(h, r2)),
                     triggers=[[perm(write(h, r, v), r2)]]))

    def exec_stmt(self, stmt, state):
        touched = [n for n in self.heap_refs
                   if n in state.env and _mentions(stmt, n)]
        for name in touched:
            ref = state.env[name]
            if ref.sort is SINT:
                self._oblige(state, self._perm(state.env["$heap"], ref),
                             f"permission to access {name}", "permission")
        super().exec_stmt(stmt, state)


def _mentions(stmt: A.Stmt, name: str) -> bool:
    from ..vc.wp import _stmt_exprs, _walk_expr
    for e in _stmt_exprs(stmt):
        for sub in _walk_expr(e):
            if isinstance(sub, (A.VarE, A.Old)) and sub.name == name:
                return True
    if isinstance(stmt, (A.SLet, A.SAssign)) and stmt.name == name:
        return True
    return False


class PrustiVcGen(HeapVcGen):
    CTX_CLS = PrustiFnCtx


class PrustiPipeline(Pipeline):
    name = "prusti"

    def verify(self, module: A.Module) -> ModuleResult:
        if module.attrs_get("uses_cyclic"):
            raise Unsupported(
                "Prusti cannot express cyclic pointer structures "
                "(Figure 7a: doubly linked list is n/a)")
        return PrustiVcGen(module, _heap_config()).verify_module()


# ---------------------------------------------------------------------------
# Ivy
# ---------------------------------------------------------------------------

class IvyPipeline(Pipeline):
    name = "ivy"

    def verify(self, module: A.Module) -> ModuleResult:
        violations = check_epr_module(module)
        if violations:
            raise Unsupported(
                "Ivy accepts only EPR programs: "
                + "; ".join(v.reason for v in violations[:3]))
        return verify_epr_module(module)


PIPELINES: dict[str, Pipeline] = {
    "verus": VerusPipeline(),
    "dafny": DafnyPipeline(),
    "fstar": FStarPipeline(),
    "creusot": CreusotPipeline(),
    "prusti": PrustiPipeline(),
    "ivy": IvyPipeline(),
}


def time_pipeline(pipeline: Pipeline, module: A.Module
                  ) -> tuple[Optional[ModuleResult], float]:
    """(result, wall seconds); result None when the tool can't express it."""
    t0 = time.perf_counter()
    try:
        result = pipeline.verify(module)
    except Unsupported:
        return None, 0.0
    return result, time.perf_counter() - t0
