"""Verus-mimalloc (§4.2.4): free-list-sharded concurrent allocator."""
