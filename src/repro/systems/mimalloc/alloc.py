"""Verus-mimalloc: a mimalloc-design concurrent allocator (§4.2.4).

Preserves mimalloc's data structures and algorithms (free-list sharding):

* **segments** (4 MiB) are carved from a simulated OS ``mmap``; segments
  hold **pages** (64 KiB) of one size class each; pages hold **blocks**,
* each thread has its own **heap** with a current page per size class,
* ``free`` from the owning thread pushes onto the page's *local* free
  list; a **cross-thread** free CAS-pushes onto the page's atomic
  ``thread_free`` list — the lock-free list whose head the paper pairs
  with deposited ghost permissions (§3.4),
* malloc first pops the local list, then *collects* the atomic list.

With ``ghost=True`` the allocator carries the ghost address-space
accounting the paper describes: an mmap permission ledger (every byte of
the address space is owned at most once) and a live-block ledger
(functional correctness: every allocation returns non-aliased memory).
Benchmarks toggle it to measure ghost-checking overhead; Figure 13's
unverified comparator is :class:`FastAllocator`.
"""

from __future__ import annotations

import threading
from typing import Optional

SEGMENT_SIZE = 4 << 20
PAGE_SIZE = 64 << 10
MAX_SMALL = 128 << 10   # allocations above this are unsupported (paper too)

SIZE_CLASSES = [8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
                2048, 4096, 8192, 16384, 32768, 65536 - 64]


def size_class_index(size: int) -> int:
    """Smallest size class fitting `size` (the bucket computation the
    paper dispatches to nonlinear/bit-vector reasoning)."""
    for i, c in enumerate(SIZE_CLASSES):
        if size <= c:
            return i
    raise ValueError(f"allocation of {size} bytes exceeds the supported max")


class GhostLedger:
    """Address-space + liveness accounting (the ghost permissions)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.mapped: list[tuple[int, int]] = []   # disjoint (start, end)
        self.live: dict[int, int] = {}            # block addr -> size

    def deposit_mmap(self, start: int, size: int) -> None:
        with self._lock:
            for s, e in self.mapped:
                if start < e and s < start + size:
                    raise AssertionError(
                        f"mmap returned overlapping range {start:#x}")
            self.mapped.append((start, start + size))

    def mint_block(self, addr: int, size: int) -> None:
        with self._lock:
            if not any(s <= addr and addr + size <= e
                       for s, e in self.mapped):
                raise AssertionError(
                    f"block {addr:#x} outside mapped space")
            for a, sz in self.live.items():
                if addr < a + sz and a < addr + size:
                    raise AssertionError(
                        f"malloc returned aliased memory {addr:#x}")
            self.live[addr] = size

    def consume_block(self, addr: int) -> None:
        with self._lock:
            if addr not in self.live:
                raise AssertionError(f"free of non-live block {addr:#x}")
            del self.live[addr]


class SimOS:
    """Simulated mmap: coarse-grained, page-aligned allocations."""

    def __init__(self, ghost: Optional[GhostLedger]):
        self._next = 1 << 32
        self._lock = threading.Lock()
        self.ghost = ghost
        self.mmap_calls = 0

    def mmap(self, size: int) -> int:
        with self._lock:
            addr = self._next
            self._next += size
            self.mmap_calls += 1
        if self.ghost is not None:
            self.ghost.deposit_mmap(addr, size)
        return addr


class Page:
    """A run of equal-sized blocks with sharded free lists."""

    __slots__ = ("addr", "block_size", "capacity", "free_list",
                 "thread_free", "thread_free_lock", "used", "owner",
                 "next_fresh")

    def __init__(self, addr: int, block_size: int, owner: int):
        self.addr = addr
        self.block_size = block_size
        self.capacity = PAGE_SIZE // block_size
        self.free_list: list[int] = []        # local (owner-only)
        self.thread_free: list[int] = []      # atomic cross-thread list
        self.thread_free_lock = threading.Lock()  # models the CAS loop
        self.used = 0
        self.owner = owner
        self.next_fresh = 0                   # bump pointer for fresh blocks

    def pop_block(self) -> Optional[int]:
        if self.free_list:
            self.used += 1
            return self.free_list.pop()
        if self.next_fresh < self.capacity:
            addr = self.addr + self.next_fresh * self.block_size
            self.next_fresh += 1
            self.used += 1
            return addr
        return None

    def collect_thread_free(self) -> None:
        """Atomically swap out the cross-thread list (mimalloc's collect)."""
        with self.thread_free_lock:
            grabbed, self.thread_free = self.thread_free, []
        if grabbed:
            self.free_list.extend(grabbed)
            self.used -= len(grabbed)

    def push_local(self, addr: int) -> None:
        self.free_list.append(addr)
        self.used -= 1

    def push_thread_free(self, addr: int) -> None:
        with self.thread_free_lock:  # CAS push in real mimalloc
            self.thread_free.append(addr)


class Segment:
    __slots__ = ("addr", "pages_used", "owner")

    def __init__(self, addr: int, owner: int):
        self.addr = addr
        self.pages_used = 0
        self.owner = owner


class Heap:
    """A thread-local heap (mimalloc tld): current page per size class."""

    def __init__(self, allocator: "Allocator", thread_id: int):
        self.allocator = allocator
        self.thread_id = thread_id
        self.pages: dict[int, list[Page]] = {i: [] for i
                                             in range(len(SIZE_CLASSES))}
        self.current_segment: Optional[Segment] = None

    def _fresh_page(self, class_index: int) -> Page:
        allocator = self.allocator
        seg = self.current_segment
        if seg is None or seg.pages_used >= SEGMENT_SIZE // PAGE_SIZE:
            seg = Segment(allocator.os.mmap(SEGMENT_SIZE), self.thread_id)
            self.current_segment = seg
        addr = seg.addr + seg.pages_used * PAGE_SIZE
        seg.pages_used += 1
        page = Page(addr, SIZE_CLASSES[class_index], self.thread_id)
        self.pages[class_index].append(page)
        allocator.register_page(page)
        return page

    def malloc(self, size: int) -> int:
        ci = size_class_index(size)
        pages = self.pages[ci]
        if pages:
            page = pages[-1]
            block = page.pop_block()
            if block is None:
                page.collect_thread_free()
                block = page.pop_block()
            if block is not None:
                return block
        page = self._fresh_page(ci)
        block = page.pop_block()
        assert block is not None
        return block


class Allocator:
    """The process-wide allocator: heaps + page lookup for frees."""

    def __init__(self, ghost: bool = False):
        self.ghost = GhostLedger() if ghost else None
        self.os = SimOS(self.ghost)
        self._heaps: dict[int, Heap] = {}
        self._pages_by_addr: dict[int, Page] = {}  # page base -> Page
        self._registry_lock = threading.Lock()

    def heap(self, thread_id: Optional[int] = None) -> Heap:
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._registry_lock:
            h = self._heaps.get(tid)
            if h is None:
                h = Heap(self, tid)
                self._heaps[tid] = h
            return h

    def register_page(self, page: Page) -> None:
        with self._registry_lock:
            self._pages_by_addr[page.addr] = page

    def _page_of(self, addr: int) -> Page:
        base = addr - (addr % PAGE_SIZE)
        with self._registry_lock:
            page = self._pages_by_addr.get(base)
        if page is None:
            raise AssertionError(f"free of unknown address {addr:#x}")
        return page

    def malloc(self, size: int, thread_id: Optional[int] = None) -> int:
        block = self.heap(thread_id).malloc(size)
        if self.ghost is not None:
            page = self._page_of(block)
            self.ghost.mint_block(block, page.block_size)
        return block

    def free(self, addr: int, thread_id: Optional[int] = None) -> None:
        if self.ghost is not None:
            self.ghost.consume_block(addr)
        page = self._page_of(addr)
        tid = thread_id if thread_id is not None else threading.get_ident()
        if page.owner == tid:
            page.push_local(addr)
        else:
            page.push_thread_free(addr)  # the lock-free cross-thread path


class FastAllocator:
    """The unverified comparator ("mimalloc" in Figure 13): same design,
    no ghost ledger, minimal bookkeeping."""

    def __init__(self):
        self.inner = Allocator(ghost=False)

    def malloc(self, size: int, thread_id: Optional[int] = None) -> int:
        return self.inner.malloc(size, thread_id)

    def free(self, addr: int, thread_id: Optional[int] = None) -> None:
        self.inner.free(addr, thread_id)
