"""Verified facets of the allocator (§4.2.4).

Three pieces, matching where the paper spends its proof effort:

1. **Block-range disjointness** — distinct block indices in a page yield
   disjoint byte ranges (``by(nonlinear_arith)``: products of index and
   block size).  This is the heart of "every allocation returns
   non-aliased memory".
2. **Size rounding bit-tricks** — ``(size + 7) & ~7`` equals the
   arithmetic rounding (``by(bit_vector)``), the kind of idiom mimalloc's
   bucket computation uses.
3. **The block lifecycle protocol** — a VerusSync system where every block
   address is a ``map`` shard in state Free/Live/Delayed.  ``free_remote``
   is the paper's cross-thread deallocation: it deposits the block into
   the *delayed* state (the atomic list), and ``collect`` withdraws it.
   Generated obligations prove freshness (no block is ever in two states)
   and that double frees are unsatisfiable.
"""

from __future__ import annotations

from ...lang import *
from ...sync import SyncSystem

BlockState = EnumType("MiBlockState").declare({
    "Free": [],
    "Live": [],
    "Delayed": [],
})


def build_bit_tricks_module() -> Module:
    mod = Module("mimalloc_bit_tricks")
    size = var("size", U64)
    n = var("n", U64)
    NOT7 = ~7 & ((1 << 64) - 1)
    exec_fn(mod, "round_up_8", [("size", U64)],
            requires=[size < lit(1 << 60)],
            body=[
                # isolation (§3.3): the range premise must be written into
                # the bit-vector assertion — ambient context does not leak in
                assert_((((size + 7) & lit(NOT7)) & lit(7)).eq(0),
                        by=BY_BIT_VECTOR, label="result is 8-aligned"),
                assert_(((size + 7) & lit(NOT7)).eq(
                    (size + 7) - ((size + 7) & lit(7))),
                        by=BY_BIT_VECTOR, label="mask rounding identity"),
                assert_((size < lit(1 << 60)).implies(
                    size <= ((size + 7) & lit(NOT7))),
                        by=BY_BIT_VECTOR, label="rounding never shrinks"),
            ])
    exec_fn(mod, "power_of_two_modulo", [("n", U64)],
            body=[
                assert_((n & lit(63)).eq(n % 64),
                        by=BY_BIT_VECTOR, label="mask is mod for 2^6"),
                assert_((n & lit(4095)).eq(n % 4096),
                        by=BY_BIT_VECTOR, label="mask is mod for 2^12"),
            ])
    return mod


def build_disjointness_module() -> Module:
    mod = Module("mimalloc_disjointness")
    start = var("start", INT)
    bs = var("bs", INT)
    i, j = var("i", INT), var("j", INT)
    exec_fn(
        mod, "blocks_disjoint",
        [("start", INT), ("bs", INT), ("i", INT), ("j", INT)],
        requires=[bs > 0, i >= 0, j >= 0, i < j],
        body=[
            # end of block i is at most the start of block j
            assert_((i + 1) * bs <= j * bs,
                    by=BY_NONLINEAR,
                    premises=[bs > 0, i + 1 <= j],
                    label="block ends before next begins"),
            assert_(start + (i + 1) * bs <= start + j * bs,
                    label="shifted ranges stay disjoint"),
        ])
    exec_fn(
        mod, "block_inside_page",
        [("start", INT), ("bs", INT), ("i", INT)],
        requires=[bs > 0, i >= 0, (i + 1) * bs <= lit(65536)],
        body=[
            assert_(i * bs <= (i + 1) * bs,
                    by=BY_NONLINEAR, premises=[bs > 0, i >= 0],
                    label="block start below block end"),
            assert_(start + i * bs <= start + lit(65536),
                    label="block inside the page"),
        ])
    return mod


def build_lifecycle_system() -> SyncSystem:
    """The block-state protocol with the cross-thread delayed list."""
    sys_ = SyncSystem("mimalloc_lifecycle")
    sys_.field("blocks", "map", key=INT, value=BlockState)
    sys_.init("initialize").init_field("blocks", map_empty(INT, BlockState))

    b = sys_.param("b", INT)
    # mmap minting: a brand-new address enters the Free state
    sys_.transition("mint", params=[("b", INT)]) \
        .require(sys_.pre("blocks").contains_key(b).not_()) \
        .add("blocks", b, enum(BlockState, "Free"))
    # malloc: Free -> Live
    sys_.transition("alloc", params=[("b", INT)]) \
        .remove("blocks", b, enum(BlockState, "Free")) \
        .add("blocks", b, enum(BlockState, "Live"))
    # same-thread free: Live -> Free
    sys_.transition("free_local", params=[("b", INT)]) \
        .remove("blocks", b, enum(BlockState, "Live")) \
        .add("blocks", b, enum(BlockState, "Free"))
    # cross-thread free: Live -> Delayed (deposit into the atomic list)
    sys_.transition("free_remote", params=[("b", INT)]) \
        .remove("blocks", b, enum(BlockState, "Live")) \
        .add("blocks", b, enum(BlockState, "Delayed"))
    # the owner collects the atomic list: Delayed -> Free
    sys_.transition("collect", params=[("b", INT)]) \
        .remove("blocks", b, enum(BlockState, "Delayed")) \
        .add("blocks", b, enum(BlockState, "Free"))

    # Non-aliasing rephrased: a block's state is unique (map shards make
    # this structural); the checkable invariant is that states are legal.
    sys_.invariant("states_legal", lambda sv: forall(
        [("bb", INT)],
        sv("blocks").contains_key(var("bb", INT)).implies(or_all(
            sv("blocks").map_index(var("bb", INT)).is_variant("Free"),
            sv("blocks").map_index(var("bb", INT)).is_variant("Live"),
            sv("blocks").map_index(var("bb", INT)).is_variant("Delayed")))))

    # property!: double-free is impossible — freeing needs the Live shard,
    # and after free_local the shard is Free.
    sys_.property_("no_double_free", params=[("b", INT)]) \
        .have("blocks", b, enum(BlockState, "Free")) \
        .assert_(sys_.pre("blocks").map_index(b)
                 .is_variant("Live").not_())
    return sys_
