"""The five case-study systems of §4.2."""
