"""IronKV host: a sharded key-value store node (§4.2.1).

Each host owns a key range (tracked by every node's *delegation map*) and
serves Get/Set for keys it owns; a Delegate message moves a key range —
with its data — to another host.

Two executable variants exist so Figure 10's comparison is meaningful:

* :class:`VerusHost` — the paper's port: the trait-based marshalling
  library and in-place (``&mut``-style) delegation-map updates.
* :class:`IronFleetHost` — the Dafny original's style: a generic
  value-tree marshaller (each message is first converted into a tagged
  tree of values, then serialized — the "tedious boilerplate" design) and
  rebuild-the-whole-structure updates (IronFleet avoided fine-grained
  mutation reasoning by replacing entire structures).

Both implement the same protocol and interoperate over the simulated
network.

The fabric (:mod:`repro.runtime.network`) is lossy, so delivery is made
reliable in the host loop: Delegate messages are buffered unacked and
retransmitted with exponential backoff + seeded jitter until the peer
acks (dedup by content rid keeps re-application single-shot), forwarded
Get/Set replies are relayed back to the original requester, and
:class:`ReliableClient` retransmits requests until the matching-rid
Reply lands.  Set is idempotent, so at-least-once delivery is safe.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from typing import Optional

from ...runtime.network import Endpoint, Network
from . import marshal as M

KEY_SPACE = 1 << 20

# Retransmission backoff: first resend after RETX_BASE seconds, doubling
# up to RETX_CAP, each delay scaled by (1 + jitter) from a seeded RNG so
# two hosts never stay lock-stepped.
RETX_BASE = 0.05
RETX_CAP = 1.0


def _rid_of(data: bytes) -> int:
    """Content-derived request id for messages (like Delegate) that have
    no client-chosen rid: first 8 bytes of the payload's SHA-256."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class DelegationMap:
    """Pivot list: pivots[i] starts the range owned by hosts[i].

    Invariant: pivots is strictly sorted and pivots[0] == 0 so every key
    is covered — the verified model proves exactly this (see
    delegation_map.py / delegation_map_epr.py).
    """

    def __init__(self, default_host: int):
        self.pivots: list[int] = [0]
        self.hosts: list[int] = [default_host]

    def get(self, key: int) -> int:
        lo, hi = 0, len(self.pivots) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.pivots[mid] <= key:
                lo = mid
            else:
                hi = mid - 1
        return self.hosts[lo]

    def set_range(self, lo: int, hi: int, host: int) -> None:
        """Map keys in [lo, hi) to `host` — in-place splice (Verus style)."""
        if lo >= hi:
            return
        after = self.get(hi) if hi < KEY_SPACE else None
        new_pivots: list[int] = []
        new_hosts: list[int] = []
        for p, h in zip(self.pivots, self.hosts):
            if p < lo or (hi < KEY_SPACE and p >= hi):
                new_pivots.append(p)
                new_hosts.append(h)
        insert_at = 0
        while insert_at < len(new_pivots) and new_pivots[insert_at] < lo:
            insert_at += 1
        new_pivots.insert(insert_at, lo)
        new_hosts.insert(insert_at, host)
        if hi < KEY_SPACE and (insert_at + 1 >= len(new_pivots)
                               or new_pivots[insert_at + 1] != hi):
            new_pivots.insert(insert_at + 1, hi)
            new_hosts.insert(insert_at + 1, after)
        self.pivots = new_pivots
        self.hosts = new_hosts

    def check_invariant(self) -> bool:
        return (self.pivots[0] == 0
                and all(a < b for a, b in zip(self.pivots, self.pivots[1:])))


# -- messages -------------------------------------------------------------------

GET_MSG = M.derive_struct("Get", [("rid", M.U64), ("key", M.U64)])
SET_MSG = M.derive_struct("Set", [("rid", M.U64), ("key", M.U64),
                                  ("value", M.BYTES)])
REPLY_MSG = M.derive_struct("Reply", [("rid", M.U64), ("ok", M.U64),
                                      ("value", M.BYTES)])
DELEGATE_MSG = M.derive_struct(
    "Delegate", [("lo", M.U64), ("hi", M.U64), ("host", M.U64),
                 ("pairs", M.vec(M.tuple_of(M.U64, M.BYTES)))])
# Ack is appended last so the wire tags of the original four variants —
# and thus every stored byte trace — stay stable.
ACK_MSG = M.derive_struct("Ack", [("rid", M.U64)])
MESSAGE = M.derive_enum("Message", [
    ("Get", GET_MSG), ("Set", SET_MSG), ("Reply", REPLY_MSG),
    ("Delegate", DELEGATE_MSG), ("Ack", ACK_MSG),
])


class _GenericValueTree:
    """IronFleet-style marshalling: values become a tagged tree first.

    This mirrors the Dafny original's generic ``Val`` datatype: every
    message is converted into a tree of (tag, children/leaf) nodes and the
    tree is serialized generically.  The extra tree construction + generic
    dispatch is the boilerplate cost the paper's port eliminates.
    """

    @staticmethod
    def to_tree(msg) -> tuple:
        variant, payload = msg
        def conv(v):
            if isinstance(v, int):
                return ("u64", v)
            if isinstance(v, (bytes, bytearray)):
                return ("bytes", bytes(v))
            if isinstance(v, dict):
                return ("tuple", tuple(conv(x) for x in v.values()))
            if isinstance(v, (list, tuple)):
                return ("seq", tuple(conv(x) for x in v))
            raise M.MarshalError(f"bad value {v!r}")
        return ("case", variant, conv(payload))

    @staticmethod
    def marshal_tree(tree) -> bytes:
        tag = tree[0]
        if tag == "u64":
            return b"\x00" + tree[1].to_bytes(8, "little")
        if tag == "bytes":
            return (b"\x01" + len(tree[1]).to_bytes(8, "little") + tree[1])
        if tag in ("tuple", "seq"):
            code = b"\x02" if tag == "tuple" else b"\x03"
            body = b"".join(_GenericValueTree.marshal_tree(c)
                            for c in tree[1])
            return (code + len(tree[1]).to_bytes(8, "little") + body)
        if tag == "case":
            name = tree[1].encode()
            return (b"\x04" + len(name).to_bytes(8, "little") + name
                    + _GenericValueTree.marshal_tree(tree[2]))
        raise M.MarshalError(f"bad tree {tag}")

    @staticmethod
    def parse_tree(data: bytes, offset: int = 0):
        tag = data[offset]
        offset += 1
        if tag == 0:
            return ("u64", int.from_bytes(data[offset:offset + 8],
                                          "little")), offset + 8
        if tag == 1:
            n = int.from_bytes(data[offset:offset + 8], "little")
            offset += 8
            return ("bytes", bytes(data[offset:offset + n])), offset + n
        if tag in (2, 3):
            n = int.from_bytes(data[offset:offset + 8], "little")
            offset += 8
            children = []
            for _ in range(n):
                c, offset = _GenericValueTree.parse_tree(data, offset)
                children.append(c)
            return ("tuple" if tag == 2 else "seq",
                    tuple(children)), offset
        if tag == 4:
            n = int.from_bytes(data[offset:offset + 8], "little")
            offset += 8
            name = data[offset:offset + n].decode()
            offset += n
            inner, offset = _GenericValueTree.parse_tree(data, offset)
            return ("case", name, inner), offset
        raise M.MarshalError(f"bad tag {tag}")

    FIELD_NAMES = {
        "Get": ["rid", "key"],
        "Set": ["rid", "key", "value"],
        "Reply": ["rid", "ok", "value"],
        "Delegate": ["lo", "hi", "host", "pairs"],
        "Ack": ["rid"],
    }

    @classmethod
    def marshal(cls, msg) -> bytes:
        return cls.marshal_tree(cls.to_tree(msg))

    @classmethod
    def parse(cls, data: bytes):
        tree, _ = cls.parse_tree(data, 0)
        _, variant, payload = tree

        def unconv(node):
            t = node[0]
            if t in ("u64", "bytes"):
                return node[1]
            if t in ("tuple", "seq"):
                return [unconv(c) for c in node[1]]
            raise M.MarshalError("bad node")

        values = unconv(payload)
        names = cls.FIELD_NAMES[variant]
        fields = dict(zip(names, values))
        if "pairs" in fields:
            fields["pairs"] = [tuple(p) for p in fields["pairs"]]
        return (variant, fields)


class _HostBase:
    """Shared host logic; subclasses choose marshalling + map update."""

    def __init__(self, host_id: int, network: Network, default_host: int):
        self.host_id = host_id
        self.endpoint: Endpoint = network.endpoint(f"host{host_id}")
        self.store: dict[int, bytes] = {}
        self.dmap = DelegationMap(default_host)
        self._stop = threading.Event()
        self.stats = {"gets": 0, "sets": 0, "forwards": 0, "delegates": 0,
                      "retransmits": 0, "acks": 0}
        # Reliable delivery over the lossy fabric: (dst, rid) ->
        # [payload, attempts, next_due]; flushed by the serve loop with
        # exponential backoff + seeded jitter until the peer acks.
        self._unacked: dict[tuple[str, int], list] = {}
        self._retx_lock = threading.Lock()
        self._retx_rng = random.Random(0x1B0 + host_id)
        # Delegates already applied (by content rid), so a retransmitted
        # Delegate is re-acked but not re-applied.
        self._seen_delegates: set[int] = set()
        # rid -> original requester, for relaying the owner's Reply to a
        # forwarded Get/Set back to the client that asked us.
        self._forwarded: dict[int, str] = {}

    # marshal/parse supplied by subclass
    def marshal(self, msg) -> bytes:
        raise NotImplementedError

    def parse(self, data: bytes):
        raise NotImplementedError

    def serve_forever(self) -> None:
        while not self._stop.is_set():
            item = self.endpoint.recv(timeout=0.05)
            self._flush_unacked()
            if item is None:
                continue
            src, data = item
            self.handle(src, data)

    def stop(self) -> None:
        self._stop.set()

    def handle(self, src: str, data: bytes) -> None:
        variant, fields = self.parse(data)
        if variant == "Get":
            self._handle_get(src, fields)
        elif variant == "Set":
            self._handle_set(src, fields)
        elif variant == "Delegate":
            self._handle_delegate(src, fields, data)
        elif variant == "Reply":
            self._handle_reply(fields)
        elif variant == "Ack":
            self._handle_ack(src, fields)

    # ----------------------------------------------------- reliable send

    def _send_reliable(self, dst: str, data: bytes, rid: int) -> None:
        """Send ``data`` and keep retransmitting until ``dst`` acks rid."""
        with self._retx_lock:
            self._unacked[(dst, rid)] = [data, 0,
                                         time.monotonic() + RETX_BASE]
        self.endpoint.send(dst, data)

    def _flush_unacked(self) -> None:
        now = time.monotonic()
        with self._retx_lock:
            due = [(key, entry) for key, entry in self._unacked.items()
                   if entry[2] <= now]
            for _, entry in due:
                entry[1] += 1
                delay = min(RETX_CAP, RETX_BASE * (2 ** entry[1]))
                entry[2] = now + delay * (1.0 + self._retx_rng.random())
        for (dst, _), entry in due:
            self.stats["retransmits"] += 1
            self.endpoint.send(dst, entry[0])

    def _handle_ack(self, src: str, fields) -> None:
        with self._retx_lock:
            if self._unacked.pop((src, fields["rid"]), None) is not None:
                self.stats["acks"] += 1

    def _owns(self, key: int) -> bool:
        return self.dmap.get(key) == self.host_id

    def _handle_get(self, src: str, fields) -> None:
        key = fields["key"]
        if self._owns(key):
            self.stats["gets"] += 1
            value = self.store.get(key, b"")
            self._reply(src, fields["rid"], 1 if key in self.store else 0,
                        value)
        else:
            self.stats["forwards"] += 1
            owner = self.dmap.get(key)
            self._forwarded[fields["rid"]] = src
            self.endpoint.send(f"host{owner}", self.marshal(
                ("Get", {"rid": fields["rid"], "key": key})))

    def _handle_set(self, src: str, fields) -> None:
        key = fields["key"]
        if self._owns(key):
            self.stats["sets"] += 1
            self.store[key] = fields["value"]
            self._reply(src, fields["rid"], 1, b"")
        else:
            self.stats["forwards"] += 1
            owner = self.dmap.get(key)
            self._forwarded[fields["rid"]] = src
            self.endpoint.send(f"host{owner}", self.marshal(
                ("Set", dict(fields))))

    def _handle_delegate(self, src: str, fields, data: bytes) -> None:
        # Always ack (the sender's previous ack may have been dropped),
        # but apply each delegate only once.
        rid = _rid_of(data)
        self.endpoint.send(src, self.marshal(("Ack", {"rid": rid})))
        if rid in self._seen_delegates:
            return
        self._seen_delegates.add(rid)
        self.stats["delegates"] += 1
        self.update_map(fields["lo"], fields["hi"], fields["host"])
        if fields["host"] == self.host_id:
            for key, value in fields["pairs"]:
                self.store[key] = value

    def _handle_reply(self, fields) -> None:
        # The owner's answer to a Get/Set we forwarded: relay it to the
        # original requester.  Dropped relays recover via the client's
        # own retransmission (which re-records the forward).
        dst = self._forwarded.pop(fields["rid"], None)
        if dst is not None:
            self.endpoint.send(dst, self.marshal(("Reply", dict(fields))))

    def _reply(self, dst: str, rid: int, ok: int, value: bytes) -> None:
        self.endpoint.send(dst, self.marshal(
            ("Reply", {"rid": rid, "ok": ok, "value": value})))

    def delegate_range(self, lo: int, hi: int, to_host: int,
                       all_hosts: list[int]) -> None:
        """Ship [lo, hi) with data to `to_host` and tell everyone."""
        pairs = [(k, v) for k, v in self.store.items() if lo <= k < hi]
        for k, _ in pairs:
            del self.store[k]
        msg = ("Delegate", {"lo": lo, "hi": hi, "host": to_host,
                            "pairs": pairs})
        data = self.marshal(msg)
        rid = _rid_of(data)
        for h in all_hosts:
            if h == self.host_id:
                self.update_map(lo, hi, to_host)
            else:
                # Reliable: the serve loop retransmits with backoff +
                # jitter until each peer acknowledges this delegate.
                self._send_reliable(f"host{h}", data, rid)

    def update_map(self, lo: int, hi: int, host: int) -> None:
        raise NotImplementedError


class VerusHost(_HostBase):
    """The paper's port: derive-macro marshalling + in-place map update."""

    def marshal(self, msg) -> bytes:
        return MESSAGE.marshal(msg)

    def parse(self, data: bytes):
        return MESSAGE.parse(data)[0]

    def update_map(self, lo: int, hi: int, host: int) -> None:
        self.dmap.set_range(lo, hi, host)


class IronFleetHost(_HostBase):
    """The Dafny original's style: value-tree marshalling + rebuild."""

    def marshal(self, msg) -> bytes:
        return _GenericValueTree.marshal(msg)

    def parse(self, data: bytes):
        return _GenericValueTree.parse(data)

    def update_map(self, lo: int, hi: int, host: int) -> None:
        # Rebuild the whole structure (IronFleet avoided in-place mutation).
        rebuilt = DelegationMap(self.dmap.hosts[0])
        rebuilt.pivots = list(self.dmap.pivots)
        rebuilt.hosts = list(self.dmap.hosts)
        rebuilt.set_range(lo, hi, host)
        self.dmap = rebuilt


class ReliableClient:
    """At-least-once request client for the lossy fabric.

    Sends a Get/Set and retransmits with exponential backoff + seeded
    jitter until a Reply carrying the *matching rid* arrives (stale
    replies from earlier retransmissions are discarded), so requests
    converge under any ``Network(drop_rate < 1)``.  Set is idempotent
    and Get is read-only, so at-least-once delivery is safe.
    """

    def __init__(self, network: Network, name: str, marshal, parse,
                 seed: int = 0, base: float = RETX_BASE,
                 cap: float = RETX_CAP):
        self.endpoint = network.endpoint(name)
        self.marshal = marshal
        self.parse = parse
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)
        self.stats = {"requests": 0, "retransmits": 0}

    def request(self, host: int, msg, timeout: float = 30.0):
        """Send ``msg`` to ``host`` until its Reply arrives; the Reply
        fields, or ``TimeoutError`` after ``timeout`` seconds."""
        rid = msg[1]["rid"]
        data = self.marshal(msg)
        dst = f"host{host}"
        self.stats["requests"] += 1
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"no reply for rid={rid} from {dst} in {timeout}s")
            if attempt:
                self.stats["retransmits"] += 1
            self.endpoint.send(dst, data)
            delay = min(self.cap, self.base * (2 ** attempt))
            wait_until = min(deadline, now + delay * (1.0 + self._rng.random()))
            attempt += 1
            while True:
                remaining = wait_until - time.monotonic()
                if remaining <= 0:
                    break
                got = self.endpoint.recv(timeout=remaining)
                if got is None:
                    continue
                variant, fields = self.parse(got[1])
                if variant == "Reply" and fields["rid"] == rid:
                    return fields

    def set(self, host: int, rid: int, key: int, value: bytes,
            timeout: float = 30.0):
        return self.request(
            host, ("Set", {"rid": rid, "key": key, "value": value}), timeout)

    def get(self, host: int, rid: int, key: int, timeout: float = 30.0):
        return self.request(
            host, ("Get", {"rid": rid, "key": key}), timeout)
