"""IronKV (§4.2.1): sharded KV store, delegation map, marshalling."""
