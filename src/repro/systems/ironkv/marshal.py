"""IronKV's marshalling library (§4.2.1), rebuilt the Verus way.

IronFleet's Dafny original mapped datatypes onto a generic value tree with
hand-written boilerplate proofs per type.  The paper's port replaces that
with a trait + derive-macro design: primitives implement ``Marshallable``
by hand, and arbitrary structs/enums get their implementation *and* their
round-trip lemmas generated.

Here the executable side is this module — ``derive_struct``/``derive_enum``
play the role of the Rust derive macros — and the verified side is
:mod:`repro.systems.ironkv.marshal_verified`, which generates verified
round-trip proofs for the same encodings.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence


class MarshalError(Exception):
    """Malformed input bytes."""


class Marshaller:
    """A Marshallable implementation: encode + decode with one interface."""

    def __init__(self, name: str,
                 marshal: Callable[[Any], bytes],
                 parse: Callable[[bytes, int], tuple[Any, int]]):
        self.name = name
        self.marshal = marshal
        self._parse = parse

    def parse(self, data: bytes, offset: int = 0) -> tuple[Any, int]:
        """(value, next_offset); raises MarshalError on malformed input."""
        return self._parse(data, offset)

    def roundtrip(self, value) -> Any:
        data = self.marshal(value)
        out, end = self.parse(data)
        if end != len(data):
            raise MarshalError(f"{self.name}: trailing bytes")
        return out


# -- primitives ---------------------------------------------------------------

def _marshal_u64(value: int) -> bytes:
    if not 0 <= value < (1 << 64):
        raise MarshalError(f"u64 out of range: {value}")
    return value.to_bytes(8, "little")


def _parse_u64(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 8 > len(data):
        raise MarshalError("u64: truncated")
    return int.from_bytes(data[offset:offset + 8], "little"), offset + 8


U64 = Marshaller("u64", _marshal_u64, _parse_u64)


def _marshal_bytes(value: bytes) -> bytes:
    return _marshal_u64(len(value)) + bytes(value)


def _parse_bytes(data: bytes, offset: int) -> tuple[bytes, int]:
    length, offset = _parse_u64(data, offset)
    if offset + length > len(data):
        raise MarshalError("bytes: truncated")
    return bytes(data[offset:offset + length]), offset + length


BYTES = Marshaller("bytes", _marshal_bytes, _parse_bytes)


def vec(item: Marshaller) -> Marshaller:
    """Vec<T>: u64 count, then items."""

    def marshal(value: Sequence) -> bytes:
        out = [_marshal_u64(len(value))]
        out.extend(item.marshal(v) for v in value)
        return b"".join(out)

    def parse(data: bytes, offset: int):
        count, offset = _parse_u64(data, offset)
        items = []
        for _ in range(count):
            v, offset = item.parse(data, offset)
            items.append(v)
        return items, offset

    return Marshaller(f"vec<{item.name}>", marshal, parse)


def tuple_of(*items: Marshaller) -> Marshaller:
    def marshal(value) -> bytes:
        if len(value) != len(items):
            raise MarshalError("tuple arity mismatch")
        return b"".join(m.marshal(v) for m, v in zip(items, value))

    def parse(data: bytes, offset: int):
        out = []
        for m in items:
            v, offset = m.parse(data, offset)
            out.append(v)
        return tuple(out), offset

    return Marshaller(f"({','.join(m.name for m in items)})", marshal, parse)


# -- the "derive macros" -----------------------------------------------------------

def derive_struct(name: str, fields: Sequence[tuple[str, Marshaller]]
                  ) -> Marshaller:
    """#[derive(Marshallable)] for a struct: fields in declaration order.

    Values are plain dicts keyed by field name (the runtime analogue of
    the struct).
    """
    field_list = list(fields)

    def marshal(value: dict) -> bytes:
        return b"".join(m.marshal(value[fname]) for fname, m in field_list)

    def parse(data: bytes, offset: int):
        out = {}
        for fname, m in field_list:
            out[fname], offset = m.parse(data, offset)
        return out, offset

    return Marshaller(name, marshal, parse)


def derive_enum(name: str, variants: Sequence[tuple[str, Marshaller]]
                ) -> Marshaller:
    """#[derive(Marshallable)] for a tagged union: u8 tag + payload.

    Values are (variant_name, payload) pairs.
    """
    variant_list = list(variants)
    index = {vname: i for i, (vname, _) in enumerate(variant_list)}

    def marshal(value) -> bytes:
        vname, payload = value
        if vname not in index:
            raise MarshalError(f"{name}: unknown variant {vname}")
        tag = index[vname]
        return bytes([tag]) + variant_list[tag][1].marshal(payload)

    def parse(data: bytes, offset: int):
        if offset >= len(data):
            raise MarshalError(f"{name}: truncated tag")
        tag = data[offset]
        if tag >= len(variant_list):
            raise MarshalError(f"{name}: bad tag {tag}")
        vname, m = variant_list[tag]
        payload, offset = m.parse(data, offset + 1)
        return (vname, payload), offset

    return Marshaller(name, marshal, parse)


UNIT = Marshaller("unit", lambda v: b"", lambda d, o: (None, o))
