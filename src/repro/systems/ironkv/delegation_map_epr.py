"""The delegation map abstracted into EPR (§3.2, Fig. 3b–c).

Keys become a totally ordered uninterpreted sort (the abstraction Verus
"trivially proves sound" against the u64 implementation); the map becomes
the relation ``owns(m, k, h)``.  The operations' effects are stated
relationally, and the invariants — the map is *functional* and *total* —
check completely automatically, the way the ~300-line default-mode proof
collapsed in the paper.
"""

from __future__ import annotations

from ...lang import *
from ...epr import verify_epr_module

DM = StructType("EprDM")
Key = StructType("EprKey")
Host = StructType("EprHost")


def build_epr_model() -> Module:
    mod = Module("delegation_map_epr", epr_mode=True)
    mod.add(Function("owns", "spec",
                     [Param("m", DM), Param("k", Key), Param("h", Host)],
                     ("result", BOOL)))
    mod.add(Function("lte", "spec",
                     [Param("a", Key), Param("b", Key)],
                     ("result", BOOL)))

    def owns(m, k, h):
        return call(mod, "owns", m, k, h)

    def lte(a, b):
        return call(mod, "lte", a, b)

    qk, qh, qh2 = ("qk", Key), ("qh", Host), ("qh2", Host)
    vk, vh, vh2 = var("qk", Key), var("qh", Host), var("qh2", Host)

    # ---- boilerplate: key total order -------------------------------------
    qa, qb, qc = ("ka", Key), ("kb", Key), ("kc", Key)
    va, vb, vc = var("ka", Key), var("kb", Key), var("kc", Key)
    order = [
        forall([qa], lte(va, va)),
        forall([qa, qb, qc],
               and_all(lte(va, vb), lte(vb, vc)).implies(lte(va, vc))),
        forall([qa, qb],
               and_all(lte(va, vb), lte(vb, va)).implies(va.eq(vb))),
        forall([qa, qb], or_all(lte(va, vb), lte(vb, va))),
    ]

    def functional(m):
        return forall([qk, qh, qh2],
                      and_all(owns(m, vk, vh), owns(m, vk, vh2)).implies(
                          vh.eq(vh2)))

    def total(m):
        return forall([qk], exists([("eh", Host)],
                                   owns(m, vk, var("eh", Host))))

    m, m2 = var("m", DM), var("m2", DM)
    h0, hn = var("h0", Host), var("hn", Host)
    klo, khi = var("klo", Key), var("khi", Key)

    # new: everything owned by the default host
    new_def = forall([qk, qh],
                     owns(m, vk, vh).eq(vh.eq(h0)))
    proof_fn(mod, "new_post", [("m", DM), ("h0", Host)],
             requires=order + [new_def],
             ensures=[functional(m), total(m)], body=[])

    # set [klo, khi) -> hn (interval in the key order: lo <= k and not hi <= k)
    set_def = forall(
        [qk, qh],
        owns(m2, vk, vh).eq(
            ite(and_all(lte(klo, vk), lte(khi, vk).not_()),
                vh.eq(hn),
                owns(m, vk, vh))))
    proof_fn(mod, "set_post",
             [("m", DM), ("m2", DM), ("klo", Key), ("khi", Key),
              ("hn", Host)],
             requires=order + [functional(m), total(m), set_def],
             ensures=[
                 functional(m2), total(m2),
                 # keys in the range now map to hn
                 forall([qk],
                        and_all(lte(klo, vk),
                                lte(khi, vk).not_()).implies(
                            owns(m2, vk, hn))),
                 # keys outside keep their owner
                 forall([qk, qh],
                        and_all(or_all(lte(klo, vk).not_(), lte(khi, vk)),
                                owns(m, vk, vh)).implies(
                            owns(m2, vk, vh))),
             ], body=[])

    # get: any witness of owns is THE owner (functionality in use)
    proof_fn(mod, "get_post",
             [("m", DM), ("k", Key), ("h", Host), ("h2", Host)],
             requires=order + [functional(m), total(m),
                               call(mod, "owns", m, var("k", Key),
                                    var("h", Host)),
                               call(mod, "owns", m, var("k", Key),
                                    var("h2", Host))],
             ensures=[var("h", Host).eq(var("h2", Host))], body=[])
    return mod


def verify() -> "ModuleResult":
    """Check the EPR model (Fig. 3c): fully automatic."""
    return verify_epr_module(build_epr_model())
