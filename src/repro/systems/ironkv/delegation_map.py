"""The IronKV delegation map, default-mode verification (§3.2, Fig. 3a).

The concrete structure is the pivot list of :class:`...host.DelegationMap`:
``pivots`` (strictly sorted, starting at 0) and per-pivot ``hosts``.  This
module verifies the executable operations in the *default* (trigger-based)
mode:

* ``dm_get`` — linear scan from the end; its postcondition pins the result
  relationally: the returned host labels the unique pivot window containing
  the key,
* ``dm_set_insert_point`` — the splice-point search used by ``set``, with
  the sortedness facts ``set`` needs,
* ``dm_wf`` preservation for the splice.

The corner-case-rich parts of ``set``'s *functional* proof are the ones the
paper reports took ~300 lines in default mode; the EPR module
(:mod:`.delegation_map_epr`) discharges that level automatically.
"""

from __future__ import annotations

from ...lang import *

SeqU = SeqType(U64)
KEY_MAX = (1 << 20)


def build_default_module() -> Module:
    mod = Module("delegation_map_default")
    p = var("p", SeqU)      # pivots
    h = var("h", SeqU)      # hosts
    k = var("k", U64)

    # well-formedness: nonempty, starts at 0, strictly sorted, same length
    spec_fn(mod, "dm_wf", [("p", SeqU), ("h", SeqU)], BOOL,
            body=and_all(
                p.length() > 0,
                h.length().eq(p.length()),
                p.index(0).eq(0),
                forall([("i", INT), ("j", INT)],
                       and_all(lit(0) <= var("i", INT),
                               var("i", INT) < var("j", INT),
                               var("j", INT) < p.length()).implies(
                           p.index(var("i", INT)) < p.index(var("j", INT)))),
            ))

    # get: scan from the end for the first pivot <= k. Returns the host
    # plus the (ghost) window index, pinning the result exactly — the
    # Verus idiom for avoiding an opaque ∃ in the postcondition.
    GetOut = StructType("DmGetOut").declare([("host", U64), ("idx", INT)])
    mod.datatype(GetOut)
    i = var("i", INT)
    out = var("out", GetOut)
    exec_fn(
        mod, "dm_get", [("p", SeqU), ("h", SeqU), ("k", U64)],
        ret=("out", GetOut),
        requires=[call(mod, "dm_wf", p, h)],
        ensures=[
            lit(0) <= out.field("idx"),
            out.field("idx") < p.length(),
            p.index(out.field("idx")) <= k,
            or_all(out.field("idx").eq(p.length() - 1),
                   k < p.index(out.field("idx") + 1)),
            out.field("host").eq(h.index(out.field("idx"))),
        ],
        body=[
            let_("i", p.length() - 1),
            while_(p.index(i) > k,
                   invariants=[
                       lit(0) <= i, i < p.length(),
                       # all pivots after i are > k
                       forall([("m", INT)],
                              and_all(i < var("m", INT),
                                      var("m", INT) < p.length()).implies(
                                  k < p.index(var("m", INT)))),
                   ],
                   body=[assign("i", i - 1)],
                   decreases=i),
            ret(struct(GetOut, host=h.index(i), idx=i)),
        ])

    # the splice-point search for set: first index with pivots[idx] >= lo
    lo = var("lo", U64)
    exec_fn(
        mod, "dm_insert_point", [("p", SeqU), ("h", SeqU), ("lo", U64)],
        ret=("idx", INT),
        requires=[call(mod, "dm_wf", p, h), lo > 0],
        ensures=[
            lit(0) < var("idx", INT),
            var("idx", INT) <= p.length(),
            # everything before the point is < lo
            forall([("m", INT)],
                   and_all(lit(0) <= var("m", INT),
                           var("m", INT) < var("idx", INT)).implies(
                       p.index(var("m", INT)) < lo)),
            # everything from the point on is >= lo
            forall([("m", INT)],
                   and_all(var("idx", INT) <= var("m", INT),
                           var("m", INT) < p.length()).implies(
                       lo <= p.index(var("m", INT)))),
        ],
        body=[
            let_("i", lit(1, INT)),
            while_(and_all(i < p.length(), p.index(i) < lo),
                   invariants=[
                       lit(1) <= i, i <= p.length(),
                       forall([("m", INT)],
                              and_all(lit(0) <= var("m", INT),
                                      var("m", INT) < i).implies(
                                  p.index(var("m", INT)) < lo)),
                   ],
                   body=[assign("i", i + 1)],
                   decreases=p.length() - i),
            ret(i),
        ])

    # the splice preserves well-formedness: take(idx) ++ [lo] stays sorted
    exec_fn(
        mod, "dm_splice_prefix",
        [("p", SeqU), ("h", SeqU), ("lo", U64), ("host", U64),
         ("idx", INT)],
        ret=("out_p", SeqU),
        requires=[
            call(mod, "dm_wf", p, h),
            lo > 0,
            lit(0) < var("idx", INT),
            var("idx", INT) <= p.length(),
            forall([("m", INT)],
                   and_all(lit(0) <= var("m", INT),
                           var("m", INT) < var("idx", INT)).implies(
                       p.index(var("m", INT)) < lo)),
        ],
        ensures=[
            var("out_p", SeqU).length().eq(var("idx", INT) + 1),
            var("out_p", SeqU).index(0).eq(0),
            # the new prefix is strictly sorted
            forall([("a", INT), ("b", INT)],
                   and_all(lit(0) <= var("a", INT),
                           var("a", INT) < var("b", INT),
                           var("b", INT) < var("idx", INT) + 1).implies(
                       var("out_p", SeqU).index(var("a", INT))
                       < var("out_p", SeqU).index(var("b", INT)))),
        ],
        body=[
            let_("prefix", p.take(var("idx", INT))),
            let_("out", var("prefix", SeqU).push(lo)),
            ret(var("out", SeqU)),
        ])
    return mod
