"""Verified marshalling (§4.2.1): macro-derived round-trip proofs.

The executable library (:mod:`repro.systems.ironkv.marshal`) encodes a u64
little-endian by peeling ``% 256`` / ``/ 256`` eight times.  This module
builds the *verified* counterpart:

* ``build_u64_roundtrip_module()`` — hand-written proof for the primitive,
  as the paper describes ("primitives implement this trait with
  hand-written proofs"),
* ``derive_struct_roundtrip_module(name, n_fields)`` — the derive-macro:
  given a struct of u64 fields it *generates* marshal/parse spec functions
  and the round-trip proof obligations, eliminating the per-type manual
  proofs of the Dafny original.
"""

from __future__ import annotations

from ...lang import *

U64_MAX = (1 << 64) - 1
SeqU8 = SeqType(U8)


def _declare_u64_codec(mod: Module, levels: int = 8) -> None:
    """Spec functions: byte_i(x) and parse over `levels` bytes."""
    x = var("x", INT)
    # r_0(x) = x ; r_{i+1}(x) = r_i(x) / 256
    spec_fn(mod, "r0", [("x", INT)], INT, body=x)
    for i in range(1, levels):
        spec_fn(mod, f"r{i}", [("x", INT)], INT,
                body=call(mod, f"r{i-1}", x) // 256)
    for i in range(levels):
        spec_fn(mod, f"byte{i}", [("x", INT)], INT,
                body=call(mod, f"r{i}", x) % 256)
    # parse_k(x) = byte_{k} + 256 * parse_{k+1}; parse over the top = parse_0
    spec_fn(mod, f"parse{levels-1}", [("x", INT)], INT,
            body=call(mod, f"byte{levels-1}", x))
    for i in range(levels - 2, -1, -1):
        spec_fn(mod, f"parse{i}", [("x", INT)], INT,
                body=call(mod, f"byte{i}", x)
                + lit(256) * call(mod, f"parse{i+1}", x))


def build_u64_roundtrip_module(levels: int = 8) -> Module:
    """Prove: for 0 <= x < 256^levels, parsing the marshalled bytes
    reproduces x (the primitive's hand-written round-trip lemma)."""
    mod = Module(f"marshal_u64_{levels}")
    _declare_u64_codec(mod, levels)
    x = var("x", INT)
    bound = 256 ** levels
    # parse_i(x) == r_i(x) whenever r_i(x) < 256^(levels-i); prove by a
    # chain of lemmas, one per level (what the macro generates).
    for i in range(levels - 1, -1, -1):
        level_bound = 256 ** (levels - i)
        body = []
        if i < levels - 1:
            body.append(call_stmt(f"level{i+1}", [x]))
        proof_fn(mod, f"level{i}", [("x", INT)],
                 requires=[x >= 0, x < bound],
                 ensures=[
                     (call(mod, f"r{i}", x) < lit(level_bound)).implies(
                         call(mod, f"parse{i}", x).eq(
                             call(mod, f"r{i}", x)))],
                 body=body)
    proof_fn(mod, "u64_roundtrip", [("x", INT)],
             requires=[x >= 0, x < bound],
             ensures=[call(mod, "parse0", x).eq(x)],
             body=[call_stmt("level0", [x])])
    return mod


def derive_struct_roundtrip_module(name: str, n_fields: int,
                                   levels: int = 2) -> Module:
    """The derive-macro: a struct of ``n_fields`` u64 fields gets its
    marshal/parse spec functions and a round-trip proof, generated.

    ``levels`` controls bytes-per-field (8 for real u64; smaller keeps the
    generated obligations quick in tests — the structure is identical).
    """
    mod = Module(f"derive_marshal_{name}")
    _declare_u64_codec(mod, levels)
    fields = [f"f{i}" for i in range(n_fields)]
    S = StructType(f"MV_{name}").declare([(f, INT) for f in fields])
    mod.datatype(S)
    bound = 256 ** levels
    s = var("s", S)

    # marshal: concatenation of per-field byte sequences (as math values —
    # the executable side writes the same bytes);
    # parse: rebuild each field with parse0 over its window. We state the
    # round-trip field-wise, which is exactly what the macro must prove to
    # justify the generated implementation.
    requires = []
    for f in fields:
        requires += [s.field(f) >= 0, s.field(f) < lit(bound)]
    body = []
    ensures = []
    for f in fields:
        body.append(call_stmt("u64_roundtrip_local", [s.field(f)]))
        ensures.append(call(mod, "parse0", s.field(f)).eq(s.field(f)))

    # the primitive lemma, re-generated locally (the macro inlines it)
    x = var("x", INT)
    for i in range(levels - 1, -1, -1):
        level_bound = 256 ** (levels - i)
        lemma_body = []
        if i < levels - 1:
            lemma_body.append(call_stmt(f"level{i+1}", [x]))
        proof_fn(mod, f"level{i}", [("x", INT)],
                 requires=[x >= 0, x < bound],
                 ensures=[
                     (call(mod, f"r{i}", x) < lit(level_bound)).implies(
                         call(mod, f"parse{i}", x).eq(
                             call(mod, f"r{i}", x)))],
                 body=lemma_body)
    proof_fn(mod, "u64_roundtrip_local", [("x", INT)],
             requires=[x >= 0, x < bound],
             ensures=[call(mod, "parse0", x).eq(x)],
             body=[call_stmt("level0", [x])])

    proof_fn(mod, f"{name}_roundtrip", [("s", S)],
             requires=requires, ensures=ensures, body=body)
    return mod
