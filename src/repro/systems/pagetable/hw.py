"""x86-64 4-level page table + MMU model (§4.2.3).

The *trusted hardware spec* is :class:`MMU`: it owns the page-table memory
(a dict of physical frames) and interprets it exactly as the ISA does —
the runtime analogue of the paper's trusted MMU spec struct that
encapsulates ownership of the page-table memory.

:class:`PageTable` implements ``map_frame``/``unmap`` against that memory.
The verified bit-level entry operations live in
:mod:`.entry_verified`; this executable twin is what the Figure 12
benchmark drives (with and without empty-directory reclamation — the
design choice the paper measures).
"""

from __future__ import annotations

from typing import Optional

PAGE_SIZE = 4096
ENTRIES = 512
LEVELS = 4

FLAG_PRESENT = 1 << 0
FLAG_WRITE = 1 << 1
FLAG_USER = 1 << 2
ADDR_MASK = ((1 << 52) - 1) & ~((1 << 12) - 1)  # bits 12..51


def entry_pack(addr: int, flags: int) -> int:
    """Pack a physical address + flags into a 64-bit entry."""
    return (addr & ADDR_MASK) | (flags & 0xFFF)


def entry_addr(entry: int) -> int:
    return entry & ADDR_MASK


def entry_flags(entry: int) -> int:
    return entry & 0xFFF


def entry_present(entry: int) -> bool:
    return bool(entry & FLAG_PRESENT)


def vaddr_index(va: int, level: int) -> int:
    """Index into the table at `level` (3 = top/PML4 ... 0 = leaf/PT)."""
    return (va >> (12 + 9 * level)) & (ENTRIES - 1)


class MMU:
    """Trusted hardware spec: owns page-table memory, walks it like the ISA.

    Memory is a dict: frame physical address -> list of 512 u64 entries.
    """

    def __init__(self):
        self._next_frame = PAGE_SIZE  # frame 0 reserved as root
        self.memory: dict[int, list[int]] = {0: [0] * ENTRIES}
        self.root = 0
        self.frames_allocated = 1
        self.frames_freed = 0

    def alloc_frame(self) -> int:
        pa = self._next_frame
        self._next_frame += PAGE_SIZE
        self.memory[pa] = [0] * ENTRIES
        self.frames_allocated += 1
        return pa

    def free_frame(self, pa: int) -> None:
        del self.memory[pa]
        self.frames_freed += 1

    def read(self, frame: int, index: int) -> int:
        return self.memory[frame][index]

    def write(self, frame: int, index: int, entry: int) -> None:
        self.memory[frame][index] = entry

    def translate(self, va: int) -> Optional[int]:
        """The hardware walk: virtual -> physical, or None (page fault)."""
        frame = self.root
        for level in range(LEVELS - 1, 0, -1):
            entry = self.memory[frame][vaddr_index(va, level)]
            if not entry_present(entry):
                return None
            frame = entry_addr(entry)
        leaf = self.memory[frame][vaddr_index(va, 0)]
        if not entry_present(leaf):
            return None
        return entry_addr(leaf) | (va & (PAGE_SIZE - 1))


class PageTable:
    """map/unmap against the MMU's memory; reclamation is the §4.2.3 knob."""

    def __init__(self, mmu: Optional[MMU] = None, reclaim: bool = True):
        self.mmu = mmu or MMU()
        self.reclaim = reclaim
        self.mapped = 0

    def map_frame(self, va: int, pa: int, flags: int = FLAG_WRITE) -> bool:
        """Map the 4K page at va -> pa. False if already mapped."""
        mmu = self.mmu
        frame = mmu.root
        for level in range(LEVELS - 1, 0, -1):
            idx = vaddr_index(va, level)
            entry = mmu.read(frame, idx)
            if not entry_present(entry):
                new_frame = mmu.alloc_frame()
                entry = entry_pack(new_frame,
                                   FLAG_PRESENT | FLAG_WRITE | FLAG_USER)
                mmu.write(frame, idx, entry)
            frame = entry_addr(entry)
        idx = vaddr_index(va, 0)
        if entry_present(mmu.read(frame, idx)):
            return False
        mmu.write(frame, idx, entry_pack(pa, flags | FLAG_PRESENT))
        self.mapped += 1
        return True

    def unmap(self, va: int) -> bool:
        """Unmap va; with ``reclaim`` walk back up freeing empty tables."""
        mmu = self.mmu
        path: list[tuple[int, int]] = []  # (frame, index) per level
        frame = mmu.root
        for level in range(LEVELS - 1, 0, -1):
            idx = vaddr_index(va, level)
            entry = mmu.read(frame, idx)
            if not entry_present(entry):
                return False
            path.append((frame, idx))
            frame = entry_addr(entry)
        idx = vaddr_index(va, 0)
        if not entry_present(mmu.read(frame, idx)):
            return False
        mmu.write(frame, idx, 0)
        self.mapped -= 1
        if self.reclaim:
            # Free now-empty directories bottom-up (what makes the paper's
            # verified unmap slower than the non-reclaiming reference).
            child = frame
            for parent, pidx in reversed(path):
                if any(entry_present(e) for e in mmu.memory[child]):
                    break
                mmu.free_frame(child)
                mmu.write(parent, pidx, 0)
                child = parent
        return True
