"""Verified map/unmap against the abstract address-space view (§4.2.3).

The paper specifies page-table correctness "from the perspective of a
user-space process": ``map`` and ``unmap`` expand and restrict the virtual
memory domain, and the (trusted) MMU spec pins how translations relate to
the table's memory.

Here the trusted MMU interface is modeled as a pair of ``Map<va, pa>``
views (the interpretation the hardware spec computes from table memory):
exec functions ``pt_map_frame`` / ``pt_unmap`` manipulate the view and are
verified to implement exactly the paper's contract — map adds one mapping
and preserves all others; unmap removes exactly one; translations of
untouched addresses never change (the user-space "reads return the most
recently written value" guarantee lifted to the translation level).
"""

from __future__ import annotations

from ...lang import *

VaMap = MapType(U64, U64)


def build_view_module() -> Module:
    mod = Module("pagetable_view")
    view = var("view", VaMap)
    va, pa = var("va", U64), var("pa", U64)
    out = var("out", VaMap)
    q = ("q", U64)
    vq = var("q", U64)

    # map_frame: requires the page unmapped; adds exactly one mapping.
    exec_fn(
        mod, "pt_map_frame",
        [("view", VaMap), ("va", U64), ("pa", U64)],
        ret=("out", VaMap),
        requires=[view.contains_key(va).not_()],
        ensures=[
            out.contains_key(va),
            out.map_index(va).eq(pa),
            # domain expansion: everything previously mapped stays put
            forall([q], view.contains_key(vq).implies(and_all(
                out.contains_key(vq),
                out.map_index(vq).eq(view.map_index(vq))))),
            # no stray mappings appear
            forall([q], out.contains_key(vq).implies(or_all(
                vq.eq(va), view.contains_key(vq)))),
        ],
        body=[ret(view.insert(va, pa))])

    # unmap: requires mapped; removes exactly one mapping.
    exec_fn(
        mod, "pt_unmap",
        [("view", VaMap), ("va", U64)],
        ret=("out", VaMap),
        requires=[view.contains_key(va)],
        ensures=[
            out.contains_key(va).not_(),
            forall([q], and_all(view.contains_key(vq),
                                vq.ne(va)).implies(and_all(
                out.contains_key(vq),
                out.map_index(vq).eq(view.map_index(vq))))),
            forall([q], out.contains_key(vq).implies(
                view.contains_key(vq))),
        ],
        body=[ret(view.remove(va))])

    # map-then-unmap is the identity on the domain (the user-space
    # round-trip property).
    exec_fn(
        mod, "pt_map_unmap_roundtrip",
        [("view", VaMap), ("va", U64), ("pa", U64)],
        requires=[view.contains_key(va).not_()],
        body=[
            call_stmt("pt_map_frame", [view, va, pa], binds=["mapped"]),
            call_stmt("pt_unmap", [var("mapped", VaMap), va],
                      binds=["back"]),
            assert_(var("back", VaMap).contains_key(va).not_(),
                    label="va unmapped again"),
            assert_(forall([q], view.contains_key(vq).implies(
                var("back", VaMap).map_index(vq).eq(view.map_index(vq)))),
                label="all other translations unchanged"),
        ])

    # translation stability: mapping a FRESH va cannot change what any
    # other va translates to (the no-aliasing guarantee user space sees).
    other = var("other", U64)
    exec_fn(
        mod, "pt_translation_stable",
        [("view", VaMap), ("va", U64), ("pa", U64), ("other", U64)],
        requires=[view.contains_key(va).not_(),
                  view.contains_key(other), other.ne(va)],
        body=[
            call_stmt("pt_map_frame", [view, va, pa], binds=["m2"]),
            assert_(var("m2", VaMap).map_index(other).eq(
                view.map_index(other)),
                label="untouched translation unchanged"),
        ])
    return mod
