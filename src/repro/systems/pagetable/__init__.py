"""OS page table (§4.2.3): 4-level x86-64 walker + verified entry ops."""
