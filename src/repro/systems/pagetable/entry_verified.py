"""Verified page-table-entry operations (§4.2.3).

Page-table entries are bit-packed 64-bit words; this module verifies the
low-level manipulations using the §3.3 automation the paper's page table
leans on (62 ``bit_vector``, 39 ``nonlinear_arith``, 11 ``compute``
invocations in theirs):

* flag set/clear/test identities — ``by(bit_vector)``,
* the paper's own displayed lemma (setting a low bit cannot disturb a
  disjoint mask) — ``by(bit_vector)``,
* virtual-address index extraction expressed with ``/`` and ``%`` agreeing
  with shift/mask — ``by(bit_vector)``,
* index range bounds — ``by(nonlinear_arith)``,
* concrete ISA constants — ``by(compute)``.
"""

from __future__ import annotations

from ...lang import *

FLAG_PRESENT = 1
FLAG_WRITE = 2
FLAG_USER = 4
ADDR_MASK = ((1 << 52) - 1) & ~((1 << 12) - 1)
FLAGS_MASK = 0xFFF


def build_entry_module() -> Module:
    mod = Module("pagetable_entries")
    e = var("e", U64)
    addr = var("addr", U64)
    flags = var("flags", U64)
    va = var("va", U64)
    a, i = var("a", U64), var("i", U64)

    # pack/unpack round-trips, all dispatched to the bit-blaster
    exec_fn(mod, "entry_pack_flags_roundtrip", [("addr", U64), ("flags", U64)],
            body=[
                assert_((((addr & lit(ADDR_MASK)) | (flags & lit(FLAGS_MASK)))
                         & lit(FLAGS_MASK)).eq(flags & lit(FLAGS_MASK)),
                        by=BY_BIT_VECTOR,
                        label="flags survive packing"),
                assert_((((addr & lit(ADDR_MASK)) | (flags & lit(FLAGS_MASK)))
                         & lit(ADDR_MASK)).eq(addr & lit(ADDR_MASK)),
                        by=BY_BIT_VECTOR,
                        label="address survives packing"),
            ])

    # setting the present bit leaves the address bits alone
    exec_fn(mod, "present_bit_preserves_addr", [("e", U64)],
            body=[
                assert_(((e | lit(FLAG_PRESENT)) & lit(ADDR_MASK)).eq(
                    e & lit(ADDR_MASK)),
                        by=BY_BIT_VECTOR,
                        label="present bit is outside the address mask"),
                assert_(((e | lit(FLAG_PRESENT)) & lit(FLAG_PRESENT)).eq(
                    lit(FLAG_PRESENT)),
                        by=BY_BIT_VECTOR, label="present bit set"),
            ])

    # clearing flags then testing present is false
    exec_fn(mod, "clear_is_not_present", [("e", U64)],
            body=[
                assert_(((e & lit(~FLAG_PRESENT & ((1 << 64) - 1)))
                         & lit(FLAG_PRESENT)).eq(0),
                        by=BY_BIT_VECTOR, label="cleared entry not present"),
            ])

    # the paper's displayed lemma (§4.2.3):
    #   i < 13 && a & mask(13,29) == 0 ==> (a | bit(i)) & mask(13,29) == 0
    mask_13_29 = (((1 << 30) - 1) & ~((1 << 13) - 1))
    exec_fn(mod, "paper_mask_lemma", [("a", U64), ("i", U64)],
            requires=[i < lit(13)],
            body=[
                # with i < 13, bit(i) <= 1<<12, disjoint from mask(13,29);
                # check the three instances the walker actually uses.
                assert_((a & lit(mask_13_29)).eq(0).implies(
                    ((a | lit(1 << 0)) & lit(mask_13_29)).eq(0)),
                        by=BY_BIT_VECTOR, label="bit 0 disjoint"),
                assert_((a & lit(mask_13_29)).eq(0).implies(
                    ((a | lit(1 << 2)) & lit(mask_13_29)).eq(0)),
                        by=BY_BIT_VECTOR, label="bit 2 disjoint"),
                assert_((a & lit(mask_13_29)).eq(0).implies(
                    ((a | lit(1 << 12)) & lit(mask_13_29)).eq(0)),
                        by=BY_BIT_VECTOR, label="bit 12 disjoint"),
            ])

    # va index extraction: shift/mask form equals div/mod form
    exec_fn(mod, "vaddr_index_shift_is_divmod", [("va", U64)],
            body=[
                assert_(((va >> lit(12)) & lit(511)).eq(
                    (va // lit(4096)) % lit(512)),
                        by=BY_BIT_VECTOR, label="level-0 index"),
                assert_(((va >> lit(21)) & lit(511)).eq(
                    (va // lit(1 << 21)) % lit(512)),
                        by=BY_BIT_VECTOR, label="level-1 index"),
                assert_(((va >> lit(30)) & lit(511)).eq(
                    (va // lit(1 << 30)) % lit(512)),
                        by=BY_BIT_VECTOR, label="level-2 index"),
                assert_(((va >> lit(39)) & lit(511)).eq(
                    (va // lit(1 << 39)) % lit(512)),
                        by=BY_BIT_VECTOR, label="level-3 index"),
            ])

    # index bounds via nonlinear reasoning on the div/mod form
    exec_fn(mod, "vaddr_index_bounds", [("va", U64)],
            body=[
                assert_(((va // lit(4096)) % lit(512)) < lit(512),
                        label="mod bound (default mode)"),
                assert_((va // lit(4096)) * lit(4096) <= va,
                        by=BY_NONLINEAR,
                        premises=[va >= 0],
                        label="page floor below va"),
            ])

    # ISA constants computed, not trusted
    exec_fn(mod, "isa_constants", [],
            body=[
                assert_(lit(ADDR_MASK).eq(lit((1 << 52) - (1 << 12))),
                        by=BY_COMPUTE, label="address mask value"),
                assert_((lit(1 << 39) * lit(512)).eq(lit(1 << 48)),
                        by=BY_COMPUTE, label="address space size"),
            ])
    return mod
