"""NR runtime: node replication via a shared log + flat combining (§4.2.2).

``NrLog`` is the shared cyclic buffer; ``Replica`` wraps one copy of the
sequential data structure per NUMA node.  Writers append operations to the
log (CAS on the tail); each replica's *combiner* batches outstanding log
entries and applies them locally; readers sync their replica to the tail
and then read locally.

When constructed with ``ghost=True`` the implementation drives the
VerusSync model of :mod:`.model` alongside every step, so the executable
code is dynamically checked against the verified protocol (the runtime
analogue of the ghost shards the paper's code manipulates).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from ...sync import ProtocolViolation, start
from .model import ExecutorState, build_nr_system
from ...vc.interp import EnumVal


class SequentialDS:
    """The black-box sequential structure NR replicates.

    Default: a dict (the x86-page-table benchmark uses a dict-of-mappings;
    any (apply_write, read) pair works).
    """

    def __init__(self):
        self.state: dict = {}

    def apply_write(self, op: tuple) -> Any:
        kind, key, value = op
        if kind == "set":
            self.state[key] = value
            return None
        if kind == "del":
            return self.state.pop(key, None)
        raise ValueError(f"unknown op {kind}")

    def read(self, key) -> Any:
        return self.state.get(key)

    def clone(self) -> "SequentialDS":
        out = SequentialDS()
        out.state = dict(self.state)
        return out


class NrLog:
    """The shared log with a CAS-advanced tail."""

    def __init__(self, ghost: bool = False):
        self.entries: list[tuple] = []
        self.tail = 0
        self._lock = threading.Lock()
        self.ghost = ghost
        self.instance = None
        self._ghost_tokens: dict = {}
        if ghost:
            self.instance, toks = start(build_nr_system(),
                                        check_invariants=True, size=1 << 20)
            self._ghost_tokens["tail"] = toks["tail"]

    def append(self, ops: list[tuple]) -> int:
        """Append a batch; returns the new tail."""
        with self._lock:
            # Ghost tail first: combiners snapshot the physical tail
            # *without* this lock, so the ghost tail must never lag it —
            # otherwise reader_version's `end <= tail` require can observe
            # a physical tail the ghost protocol hasn't admitted yet.
            if self.ghost:
                new = self.instance.apply(
                    "append", tokens={"tail": self._ghost_tokens["tail"]},
                    n=len(ops))
                self._ghost_tokens["tail"] = new["tail"]
            self.entries.extend(ops)
            self.tail += len(ops)
            return self.tail

    def read_range(self, start_idx: int, end_idx: int) -> list[tuple]:
        return self.entries[start_idx:end_idx]


class Replica:
    """One replica: local copy + version + combiner lock + ghost tokens."""

    def __init__(self, node_id: int, log: NrLog,
                 ds_factory: Callable[[], SequentialDS] = SequentialDS):
        self.node_id = node_id
        self.log = log
        self.ds = ds_factory()
        self.version = 0
        self.combiner = threading.Lock()
        self._exec_token = None
        self._version_token = None
        if log.ghost:
            minted = log.instance.apply("register_node", node_id=node_id)
            self._version_token = minted["local_versions"]
            self._exec_token = minted["executor"]

    # -- protocol steps ------------------------------------------------------

    def sync_up(self) -> None:
        """Combiner: apply outstanding log entries to the local replica.

        This is the executor protocol of Figure 5: Idle -> Starting ->
        Range{start,end,cur} -> ... -> Idle, with the version published at
        the end.
        """
        with self.combiner:
            start_idx = self.version
            inst = self.log.instance if self.log.ghost else None
            if inst is not None:
                self._exec_token = inst.apply(
                    "reader_start",
                    tokens={"executor": self._exec_token,
                            "local_versions": self._version_token},
                    node_id=self.node_id, ver=start_idx)["executor"]
            end_idx = self.log.tail
            if inst is not None:
                self._exec_token = inst.apply(
                    "reader_version",
                    tokens={"executor": self._exec_token},
                    node_id=self.node_id, start=start_idx,
                    end=end_idx)["executor"]
            cur = start_idx
            for op in self.log.read_range(start_idx, end_idx):
                self.ds.apply_write(op)
                if inst is not None:
                    self._exec_token = inst.apply(
                        "reader_advance",
                        tokens={"executor": self._exec_token},
                        node_id=self.node_id, start=start_idx,
                        end=end_idx, cur=cur)["executor"]
                cur += 1
            if inst is not None:
                minted = inst.apply(
                    "reader_finish",
                    tokens={"executor": self._exec_token,
                            "local_versions": self._version_token},
                    node_id=self.node_id, start=start_idx, end=end_idx,
                    cur=cur)
                self._exec_token = minted["executor"]
                self._version_token = minted["local_versions"]
            self.version = end_idx

    def execute_write(self, op: tuple) -> None:
        self.log.append([op])
        self.sync_up()

    def execute_read(self, key) -> Any:
        if self.version < self.log.tail:
            self.sync_up()
        return self.ds.read(key)


class NodeReplicated:
    """The public NR interface: a linearizable replicated structure."""

    def __init__(self, num_replicas: int, ghost: bool = False,
                 ds_factory: Callable[[], SequentialDS] = SequentialDS):
        self.log = NrLog(ghost=ghost)
        self.replicas = [Replica(i, self.log, ds_factory)
                         for i in range(num_replicas)]

    def write(self, replica_id: int, op: tuple) -> None:
        self.replicas[replica_id].execute_write(op)

    def read(self, replica_id: int, key) -> Any:
        return self.replicas[replica_id].execute_read(key)
