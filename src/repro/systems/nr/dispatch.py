"""NR's trait-based generic interface (§4.2.2).

The paper stresses that Verus-NR, unlike IronSync-NR, keeps the original
NR's *trait-based* interface so it can replicate arbitrary sequential
structures, with runtime-chosen replica counts and dynamic thread
registration.  :class:`Dispatch` is that trait; anything implementing it
can be wrapped by :class:`repro.systems.nr.log.NodeReplicated` via
:func:`replicated`.

Two ready-made dispatch structures are provided:

* :class:`KvDispatch` — the dict used by the tests,
* :class:`PageTableDispatch` — an x86 page table, the very structure the
  paper's Figure 11 benchmark replicates (NrOS's use case).
"""

from __future__ import annotations

from typing import Any

from ..pagetable.hw import MMU, PageTable
from .log import NodeReplicated, SequentialDS


class Dispatch:
    """The NR trait: split operations into writes (via the log) and reads.

    Implementations must be deterministic: replicas converge because every
    replica applies the same write log in the same order.
    """

    def dispatch_write(self, op: tuple) -> Any:
        raise NotImplementedError

    def dispatch_read(self, op: tuple) -> Any:
        raise NotImplementedError


class KvDispatch(Dispatch, SequentialDS):
    """Dict-backed structure (the default SequentialDS, trait-ified)."""

    def dispatch_write(self, op: tuple) -> Any:
        return self.apply_write(op)

    def dispatch_read(self, op: tuple) -> Any:
        _kind, key = op
        return self.read(key)


class PageTableDispatch(Dispatch):
    """An x86-64 page table as the replicated structure (NrOS's workload).

    Write ops: ("map", va, pa) and ("unmap", va); read op:
    ("resolve", va).  Wrapped by NR, every replica maintains its own table
    and MMU memory; determinism of map/unmap makes the replicas converge.
    """

    def __init__(self):
        self.table = PageTable(MMU(), reclaim=True)

    # SequentialDS-compatible surface so NodeReplicated can drive it.
    def apply_write(self, op: tuple) -> Any:
        kind = op[0]
        if kind == "map":
            _, va, pa = op
            return self.table.map_frame(va, pa)
        if kind == "unmap":
            _, va = op
            return self.table.unmap(va)
        raise ValueError(f"unknown page-table write {kind}")

    def read(self, key) -> Any:
        return self.table.mmu.translate(key)

    def dispatch_write(self, op: tuple) -> Any:
        return self.apply_write(op)

    def dispatch_read(self, op: tuple) -> Any:
        _kind, va = op
        return self.read(va)

    def clone(self) -> "PageTableDispatch":  # pragma: no cover - unused
        raise NotImplementedError("page tables replay the log instead")


def replicated(ds_factory, num_replicas: int, ghost: bool = False
               ) -> NodeReplicated:
    """Wrap any Dispatch factory in NR (the generic constructor)."""
    return NodeReplicated(num_replicas=num_replicas, ghost=ghost,
                          ds_factory=ds_factory)
