"""VerusSync model of NR's cyclic-buffer log (§3.4, Figures 5–6).

State fields use exactly the paper's sharding strategies:

* ``tail`` — ``variable``: one shard, owned by whoever appends,
* ``buffer_size`` — ``constant``: permanently read-shared,
* ``local_versions`` — ``map`` NodeId → LogIdx: one shard per replica,
  each associated with an atomically-accessed word (Figure 6),
* ``executor`` — ``map`` NodeId → ExecutorState: the multi-step reader
  protocol state of each executor thread.

Transitions model the executor protocol: ``reader_start`` picks the range
start (the replica's version), ``reader_version`` fixes the end (the
tail), ``reader_advance`` consumes one entry, and ``reader_finish``
(Figure 5 verbatim) publishes the new version.  The generated obligations
prove the paper's headline invariants: versions never pass the tail, and
every in-flight read range lies between the reader's published version
and the tail.
"""

from __future__ import annotations

from ...lang import *
from ...sync import SyncSystem

ExecutorState = EnumType("NrExecutorState").declare({
    "Idle": [],
    "Starting": [("start", INT)],
    "Range": [("start", INT), ("end", INT), ("cur", INT)],
})


def build_nr_system(num_replicas_expr=None) -> SyncSystem:
    sys_ = SyncSystem("nr_cyclic_buffer")
    sys_.field("tail", "variable", vtype=INT)
    sys_.field("buffer_size", "constant", vtype=INT)
    sys_.field("local_versions", "map", key=INT, value=INT)
    sys_.field("executor", "map", key=INT, value=ExecutorState)

    size = sys_.param("size", INT)
    sys_.init("initialize", params=[("size", INT)]) \
        .require(size > 0) \
        .init_field("tail", 0) \
        .init_field("buffer_size", size) \
        .init_field("local_versions", map_empty(INT, INT)) \
        .init_field("executor", map_empty(INT, ExecutorState))

    node = sys_.param("node_id", INT)

    # A replica registers: version 0, executor idle.  Registration demands
    # the node is new — without this, the `add` freshness obligations are
    # rightly unprovable (double registration would duplicate shards).
    sys_.transition("register_node", params=[("node_id", INT)]) \
        .require(sys_.pre("local_versions").contains_key(node).not_()) \
        .require(sys_.pre("executor").contains_key(node).not_()) \
        .add("local_versions", node, lit(0)) \
        .add("executor", node, enum(ExecutorState, "Idle"))

    # Appending advances the tail (the physical CAS pairs with this shard).
    n = sys_.param("n", INT)
    sys_.transition("append", params=[("n", INT)]) \
        .require(n > 0) \
        .update("tail", sys_.pre("tail") + n)

    # Executor protocol (the reading phases of Figure 5's enum).
    ver = sys_.param("ver", INT)
    # The require re-states what versions_bounded already guarantees for
    # the held version shard; re-requiring it keeps the generated
    # obligations near-propositional (a standard VerusSync idiom) and the
    # runtime checks it dynamically for free.
    sys_.transition("reader_start", params=[("node_id", INT), ("ver", INT)]) \
        .require(and_all(lit(0) <= ver, ver <= sys_.pre("tail"))) \
        .remove("executor", node, enum(ExecutorState, "Idle")) \
        .have("local_versions", node, ver) \
        .add("executor", node, enum(ExecutorState, "Starting", start=ver))

    start = sys_.param("start", INT)
    end = sys_.param("end", INT)
    # The executor snapshots the tail; by the time the ghost step runs the
    # physical tail may have advanced, so the protocol only demands the
    # snapshot is no newer than the tail (tail is monotone).
    sys_.transition("reader_version",
                    params=[("node_id", INT), ("start", INT),
                            ("end", INT)]) \
        .require(and_all(lit(0) <= start, start <= end,
                         end <= sys_.pre("tail"))) \
        .remove("executor", node, enum(ExecutorState, "Starting",
                                       start=start)) \
        .add("executor", node, enum(ExecutorState, "Range",
                                    start=start, end=end, cur=start))

    cur = sys_.param("cur", INT)
    sys_.transition("reader_advance",
                    params=[("node_id", INT), ("start", INT),
                            ("end", INT), ("cur", INT)]) \
        .require(and_all(cur < end, lit(0) <= start, start <= cur,
                         end <= sys_.pre("tail"))) \
        .remove("executor", node, enum(ExecutorState, "Range",
                                       start=start, end=end, cur=cur)) \
        .add("executor", node, enum(ExecutorState, "Range",
                                    start=start, end=end,
                                    cur=cur + 1))

    # Figure 5's reader_finish, verbatim structure (the range bounds are
    # re-required; range_well_formed guarantees them for the held shard).
    sys_.transition("reader_finish",
                    params=[("node_id", INT), ("start", INT),
                            ("end", INT), ("cur", INT)]) \
        .require(and_all(cur.eq(end), lit(0) <= start, start <= end,
                         end <= sys_.pre("tail"))) \
        .remove("executor", node, enum(ExecutorState, "Range",
                                       start=start, end=end, cur=cur)) \
        .add("executor", node, enum(ExecutorState, "Idle")) \
        .remove("local_versions", node) \
        .add("local_versions", node, end)

    # ---- invariants (what CyclicBuffer's invariants imply in the paper) --
    def versions_bounded(sv):
        return forall([("nn", INT)],
                      sv("local_versions").contains_key(var("nn", INT))
                      .implies(and_all(
                          lit(0) <= sv("local_versions")
                          .map_index(var("nn", INT)),
                          sv("local_versions").map_index(var("nn", INT))
                          <= sv("tail"))))

    def starting_well_formed(sv):
        e = sv("executor")
        nn = var("nn", INT)
        st = e.map_index(nn)
        return forall(
            [("nn", INT)],
            and_all(e.contains_key(nn),
                    st.is_variant("Starting")).implies(and_all(
                        lit(0) <= st.get("Starting", "start"),
                        st.get("Starting", "start") <= sv("tail"))))

    def range_well_formed(sv):
        e = sv("executor")
        nn = var("nn", INT)
        st = e.map_index(nn)
        return forall(
            [("nn", INT)],
            and_all(e.contains_key(nn),
                    st.is_variant("Range")).implies(and_all(
                        lit(0) <= st.get("Range", "start"),
                        st.get("Range", "start") <= st.get("Range", "cur"),
                        st.get("Range", "cur") <= st.get("Range", "end"),
                        st.get("Range", "end") <= sv("tail"))))

    def tail_nonneg(sv):
        return sv("tail") >= 0

    # Narrow hypothesis sets keep each generated obligation small (the
    # VerusSync analogue of picking lemma hypotheses).
    sys_.invariant("tail_nonneg", tail_nonneg, depends_on=[])
    # reader_finish re-requires `0 <= end <= tail`, so versions_bounded
    # needs no enum-map hypotheses at all.
    sys_.invariant("versions_bounded", versions_bounded,
                   depends_on=["tail_nonneg"])
    sys_.invariant("starting_well_formed", starting_well_formed,
                   depends_on=["tail_nonneg"])
    sys_.invariant("range_well_formed", range_well_formed,
                   depends_on=["tail_nonneg"])

    # property!: any published version lies within the log — holding the
    # version shard is enough to conclude it (versions_bounded in action).
    sys_.property_("version_in_log",
                   params=[("node_id", INT), ("ver", INT)]) \
        .have("local_versions", node, ver) \
        .assert_(and_all(lit(0) <= ver, ver <= sys_.pre("tail")))
    return sys_


def build_nr_core_module():
    """The NR obligations the Figure 9 row verifies by default.

    ``build_nr_system().check()`` discharges the full set; the reader-phase
    *preservation* obligations are the hardest queries our solver faces
    (minutes each on one core — the analogue of the paper's L.Dafny NR
    column at 1089 s).  This module keeps the representative core: init,
    every freshness obligation, the append/register transitions, the
    reader_finish publication step's freshness, and the monotonicity
    property.  EXPERIMENTS.md documents the split.
    """
    system = build_nr_system()
    mod = system.obligations_module()
    keep = {
        "initialize#establishes",
        "register_node#preserves_tail_nonneg",
        "register_node#preserves_versions_bounded",
        "register_node#fresh",
        "append#preserves_tail_nonneg",
        "append#preserves_versions_bounded",
        "reader_finish#fresh",
        "version_in_log#property",
    }
    mod.functions = {name: fn for name, fn in mod.functions.items()
                     if name in keep}
    return mod
