"""Node Replication (§4.2.2): shared log + flat combining + VerusSync model."""
