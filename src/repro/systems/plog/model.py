"""Verified crash-safety protocol of the persistent log (§4.2.5).

The log's write discipline is: write record bytes, flush them, only then
commit the header's tail.  We model the persistence state machine in
VerusSync:

* ``p_tail`` — the tail committed in the persistent header,
* ``d_flushed`` — how many data bytes are known flushed,
* ``d_written`` — how many data bytes have been written (possibly still
  in volatile buffers).

``crash`` havocs nothing persistent: both ``p_tail`` and ``d_flushed``
survive; the *volatile* write progress retreats to the flushed mark.  The
inductive invariant — the header never points past flushed data — is what
makes recovery sound: every byte below the recovered tail was flushed
before the tail committed.

The refinement to an abstract infinite log (reads below the tail return
the appended bytes) is exercised end-to-end by the crash-injection tests
against :class:`~repro.systems.plog.log.VerifiedLogLatest`.
"""

from __future__ import annotations

from ...lang import *
from ...sync import SyncSystem


def build_crash_safety_system() -> SyncSystem:
    sys_ = SyncSystem("plog_crash_safety")
    sys_.field("p_tail", "variable", vtype=INT)
    sys_.field("d_written", "variable", vtype=INT)
    sys_.field("d_flushed", "variable", vtype=INT)

    sys_.init("initialize") \
        .init_field("p_tail", 0) \
        .init_field("d_written", 0) \
        .init_field("d_flushed", 0)

    n = sys_.param("n", INT)
    # write record bytes (volatile until flushed)
    sys_.transition("write_data", params=[("n", INT)]) \
        .require(n >= 0) \
        .update("d_written", sys_.pre("d_written") + n)
    # flush: everything written becomes persistent
    sys_.transition("flush_data") \
        .update("d_flushed", sys_.pre("d_written"))
    # header commit: only up to flushed data
    t = sys_.param("t", INT)
    sys_.transition("commit_tail", params=[("t", INT)]) \
        .require(and_all(t >= sys_.pre("p_tail"),
                         t <= sys_.pre("d_flushed"))) \
        .update("p_tail", t)
    # crash: volatile write progress retreats to the flushed mark;
    # persistent state survives.
    sys_.transition("crash") \
        .update("d_written", sys_.pre("d_flushed"))

    sys_.invariant("flushed_below_written",
                   lambda sv: sv("d_flushed") <= sv("d_written"))
    sys_.invariant("tail_below_flushed",
                   lambda sv: sv("p_tail") <= sv("d_flushed"))
    sys_.invariant("nonneg", lambda sv: and_all(
        sv("p_tail") >= 0, sv("d_flushed") >= 0, sv("d_written") >= 0))

    # property!: at any crash point, recovery's tail covers only flushed
    # bytes — the record below p_tail is fully persistent.
    sys_.property_("recovery_sound") \
        .assert_(sys_.pre("p_tail") <= sys_.pre("d_flushed"))
    return sys_
