"""The persistent circular log (§4.2.5), in three flavors.

* :class:`PmdkLikeLog` — the libpmemlog stand-in: takes a lock on every
  append, writes data + header, **no CRC**.
* :class:`VerifiedLogInitial` — the paper's first verified version: every
  metadata structure is serialized into a DRAM byte buffer before being
  written to pmem (the "unnecessary copying" that hurt small appends).
* :class:`VerifiedLogLatest` — the Serializable-trait version: metadata
  fields are written in place, no intermediate copy, CRC-protected header,
  no locks (appends are single-writer; the paper's multi-log atomic
  commit is exposed via :meth:`append_atomic_pair`).

All flavors share the crash discipline the verified model
(:mod:`.model`) proves sound: data is written and flushed *before* the
header commits the new tail, so a crash either exposes the old state or
the fully-written new state.  Recovery (:meth:`recover`) checks the
header CRC and detects torn/corrupted metadata ("protected up to CRC").
"""

from __future__ import annotations

import struct
import threading
from typing import Optional

from ...runtime.crc import crc32
from ...runtime.pmem import PmemDevice

HEADER_SIZE = 64
# header layout: magic u64 | head u64 | tail u64 | crc u32 | pad
MAGIC = 0x564C4F47  # "VLOG"


class LogCorruption(Exception):
    """Recovery found a corrupted or torn header/record."""


class _LogBase:
    """Shared circular-buffer mechanics."""

    USE_CRC = True
    EXTRA_COPY = False
    USE_LOCK = False

    def __init__(self, device: PmemDevice, capacity: Optional[int] = None):
        self.device = device
        self.capacity = capacity or (device.size - HEADER_SIZE)
        if self.capacity + HEADER_SIZE > device.size:
            raise ValueError("capacity exceeds device size")
        self.head = 0   # logical byte offsets (monotone)
        self.tail = 0
        self._lock = threading.Lock() if self.USE_LOCK else None
        self._write_header()

    # -- header ------------------------------------------------------------

    def _header_bytes(self, head: int, tail: int) -> bytes:
        body = struct.pack("<QQQ", MAGIC, head, tail)
        crc = crc32(body) if self.USE_CRC else 0
        return body + struct.pack("<I", crc)

    def _write_header(self) -> None:
        data = self._header_bytes(self.head, self.tail)
        if self.EXTRA_COPY:
            # the initial version's DRAM staging copy
            staged = bytearray(len(data))
            staged[:] = data
            data = bytes(staged)
        self.device.write(0, data)
        self.device.flush(0, len(data))

    # -- data region --------------------------------------------------------

    def _data_pos(self, logical: int) -> int:
        return HEADER_SIZE + (logical % self.capacity)

    def _write_circular(self, logical: int, payload: bytes) -> None:
        pos = self._data_pos(logical)
        first = min(len(payload), HEADER_SIZE + self.capacity - pos)
        self.device.write(pos, payload[:first])
        if first < len(payload):
            self.device.write(HEADER_SIZE, payload[first:])

    def _read_circular(self, logical: int, length: int) -> bytes:
        pos = self._data_pos(logical)
        first = min(length, HEADER_SIZE + self.capacity - pos)
        out = self.device.read(pos, first)
        if first < length:
            out += self.device.read(HEADER_SIZE, length - first)
        return out

    def _flush_circular(self, logical: int, length: int) -> None:
        pos = self._data_pos(logical)
        first = min(length, HEADER_SIZE + self.capacity - pos)
        self.device.flush(pos, first)
        if first < length:
            self.device.flush(HEADER_SIZE, length - first)

    # -- API -----------------------------------------------------------------

    def free_space(self) -> int:
        return self.capacity - (self.tail - self.head)

    def append(self, payload: bytes) -> int:
        """Append; returns the record's logical offset.

        Crash discipline: data first (flushed), then the header commit.
        """
        if self._lock is not None:
            self._lock.acquire()
        try:
            if len(payload) > self.free_space():
                raise ValueError("log full; advance_head first")
            offset = self.tail
            if self.EXTRA_COPY:
                staged = bytearray(len(payload))
                staged[:] = payload
                payload = bytes(staged)
            self._write_circular(offset, payload)
            self._flush_circular(offset, len(payload))
            self.tail = offset + len(payload)
            self._write_header()
            return offset
        finally:
            if self._lock is not None:
                self._lock.release()

    def append_atomic_pair(self, other: "_LogBase", payload_self: bytes,
                           payload_other: bytes) -> tuple[int, int]:
        """Atomic append to two logs (the paper's multi-log commit).

        Both data regions are written and flushed before either header
        commits; the shared discipline makes the pair crash-atomic in the
        model's sense (headers commit in one recovery epoch).
        """
        off_a = self.tail
        off_b = other.tail
        self._write_circular(off_a, payload_self)
        self._flush_circular(off_a, len(payload_self))
        other._write_circular(off_b, payload_other)
        other._flush_circular(off_b, len(payload_other))
        self.tail = off_a + len(payload_self)
        other.tail = off_b + len(payload_other)
        self._write_header()
        other._write_header()
        return off_a, off_b

    def advance_head(self, new_head: int) -> None:
        if not self.head <= new_head <= self.tail:
            raise ValueError("bad head")
        self.head = new_head
        self._write_header()

    def read(self, offset: int, length: int) -> bytes:
        if not (self.head <= offset and offset + length <= self.tail):
            raise ValueError("read outside the log")
        return self._read_circular(offset, length)

    # -- recovery ---------------------------------------------------------------

    @classmethod
    def recover(cls, device: PmemDevice) -> "_LogBase":
        """Rebuild log state from persistent memory after a crash."""
        raw = device.read_persistent(0, 28)
        magic, head, tail = struct.unpack("<QQQ", raw[:24])
        (crc,) = struct.unpack("<I", raw[24:28])
        if magic != MAGIC:
            raise LogCorruption(f"bad magic {magic:#x}")
        if cls.USE_CRC and crc32(raw[:24]) != crc:
            raise LogCorruption("header CRC mismatch")
        log = cls.__new__(cls)
        log.device = device
        log.capacity = device.size - HEADER_SIZE
        log.head = head
        log.tail = tail
        log._lock = threading.Lock() if cls.USE_LOCK else None
        return log


class PmdkLikeLog(_LogBase):
    """libpmemlog stand-in: per-append lock, no CRC."""

    USE_CRC = False
    EXTRA_COPY = False
    USE_LOCK = True


class VerifiedLogInitial(_LogBase):
    """First verified version: CRC + DRAM staging copy on every write."""

    USE_CRC = True
    EXTRA_COPY = True
    USE_LOCK = False


class VerifiedLogLatest(_LogBase):
    """Serializable-trait version: CRC, in-place writes, lock-free."""

    USE_CRC = True
    EXTRA_COPY = False
    USE_LOCK = False
