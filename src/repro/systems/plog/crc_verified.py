"""Proof by computation for the CRC-32 lookup table (§3.3's anecdote).

The paper: "we tried to verify an efficient implementation of the CRC-32
checksum that used a hard-coded lookup table ... proving that the table
resulted from this computation required an excruciating number of proof
annotations ... In Verus, a developer can ask that a proof be discharged
by computation."

Here the table-entry computation is written as a recursive spec function
(8 steps of reflected polynomial division, with the xor expressed through
the ``%``/``/`` decomposition available to the compute engine), and the
hard-coded entries of :data:`repro.runtime.crc.TABLE` are proved equal to
the spec *by evaluation* — no solver annotations at all.
"""

from __future__ import annotations

from ...lang import *
from ...runtime.crc import POLY, TABLE


def _xor_expr(mod, a, b):
    """Bitwise xor over the compute path.

    The compute engine folds the uninterpreted `&`-style bit operators only
    in bit-vector terms, so the spec uses a recursive definition of xor via
    parity — everything stays in the +,-,*,/,% fragment the interpreter
    evaluates exactly.
    """
    return call(mod, "xor32", a, b)


def build_crc_table_module(entries=(0, 1, 2, 7, 16, 31, 128, 255)) -> Module:
    """Verify selected TABLE entries against the recursive spec."""
    mod = Module("crc_table_by_compute")
    a, b, n = var("a", INT), var("b", INT), var("n", INT)

    # xor32 via recursion on bits: xor(a, b) =
    #   (a%2 + b%2) % 2 + 2 * xor(a/2, b/2)
    spec_fn(mod, "xor32", [("a", INT), ("b", INT)], INT,
            body=ite(and_all(a.eq(0), b.eq(0)),
                     lit(0),
                     ((a % 2) + (b % 2)) % 2
                     + 2 * rec_call("xor32", INT, a // 2, b // 2)),
            decreases=a + b)

    # one step of reflected CRC-32: if lsb set, shift and xor the poly
    v = var("v", INT)
    spec_fn(mod, "crc_step", [("v", INT)], INT,
            body=ite((v % 2).eq(1),
                     _xor_expr(mod, v // 2, lit(POLY)),
                     v // 2))

    # n steps
    spec_fn(mod, "crc_steps", [("v", INT), ("n", INT)], INT,
            body=ite(n <= 0, v,
                     rec_call("crc_steps", INT,
                              call(mod, "crc_step", v), n - 1)),
            decreases=n)

    body = []
    for index in entries:
        body.append(assert_(
            call(mod, "crc_steps", lit(index), lit(8)).eq(TABLE[index]),
            by=BY_COMPUTE,
            label=f"table[{index}] is the 8-step polynomial division"))
    exec_fn(mod, "crc_table_entries_correct", [], body=body)
    return mod
