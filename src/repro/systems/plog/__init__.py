"""Persistent log (§4.2.5): crash-safe circular log on a pmem model."""
