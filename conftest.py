"""Ensure `src/` is importable even without an installed package.

The offline environment lacks the `wheel` package, which breaks pip's
PEP 660 editable-install path; `python setup.py develop` works, but this
shim makes `pytest` self-sufficient either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
