#!/usr/bin/env python3
"""The verified lemma library: prove once, call everywhere.

Verus ships vstd, a standard library of verified utilities whose lemmas
user proofs invoke instead of re-deriving facts inline.  This example
builds the analogue (`repro.lang.stdlib`), re-verifies it, and then uses
two of its lemmas from a user module:

* a nonlinear product ordering that the default (linear) encoding cannot
  prove by itself, discharged by calling ``lemma_mul_strictly_ordered``
  — the paper's §3.3 workflow of isolating nonlinear facts;
* sequence push/index facts combined into a round-trip property.

Run:  python examples/lemma_library.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import Session  # noqa: E402
from repro.lang import *  # noqa: E402
from repro.lang.stdlib import SeqI, build_stdlib  # noqa: E402


def main() -> None:
    session = Session()
    std = build_stdlib()
    result = session.verify_module(std)
    print(f"stdlib: {len(result.functions)} lemmas verified "
          f"in {result.seconds:.2f}s")
    assert result.ok

    i, n, k = var("i", INT), var("n", INT), var("k", INT)
    s, v = var("s", SeqI), var("v", INT)

    user = Module("user")
    user.import_module(std)

    # Without the lemma call this goal fails (products are uninterpreted
    # in the default encoding); with it, the obligation is propositional.
    proof_fn(user, "scaled_ordering", [("i", INT), ("n", INT), ("k", INT)],
             requires=[i < n, k > 0],
             ensures=[i * k < n * k],
             body=[call_stmt("lemma_mul_strictly_ordered", [i, n, k])])

    proof_fn(user, "push_roundtrip", [("s", SeqI), ("v", INT)],
             ensures=[s.push(v).index(s.length()).eq(v),
                      s.push(v).length().eq(s.length() + 1)],
             body=[call_stmt("lemma_seq_push_last", [s, v]),
                   call_stmt("lemma_seq_push_len", [s, v])])

    user_result = session.verify_module(user)
    print(user_result.report())
    assert user_result.ok

    # The same user module WITHOUT lemma calls does not verify — the
    # library is doing real work, not decorating provable goals.
    bare = Module("user_bare")
    proof_fn(bare, "scaled_ordering", [("i", INT), ("n", INT), ("k", INT)],
             requires=[i < n, k > 0],
             ensures=[i * k < n * k], body=[])
    assert not session.verify_module(bare).ok
    print("without the lemma call the nonlinear goal fails, as expected")

    print("lemma_library example passed")


if __name__ == "__main__":
    main()
