#!/usr/bin/env python3
"""The distributed-lock millibenchmark (§4.1), both proof styles.

Default mode proves the inductive invariant with trigger-based
semi-automation over integer epochs; EPR mode abstracts epochs into a
totally ordered sort and gets a fully automatic, decidable check at the
cost of spelling out the order boilerplate.

Run:  python examples/distributed_lock.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.epr import verify_epr_module          # noqa: E402
from repro.millibench.distlock import (build_default_module,  # noqa: E402
                                       build_epr_module)
from repro.vc.wp import VcGen                    # noqa: E402


def main() -> None:
    print("== default mode (integer epochs, explicit invariant) ==")
    t0 = time.perf_counter()
    default = VcGen(build_default_module()).verify_module()
    print(default.report())
    print(f"default mode: {time.perf_counter() - t0:.2f}s")
    assert default.ok

    print("\n== EPR mode (abstract ordered epochs, automatic check) ==")
    t0 = time.perf_counter()
    epr = verify_epr_module(build_epr_module())
    print(epr.report())
    print(f"epr mode: {time.perf_counter() - t0:.2f}s")
    assert epr.ok

    print("\nBoth proofs establish per-epoch mutual exclusion:")
    print("  locked(e, n1) ∧ locked(e, n2)  ==>  n1 = n2")
    print("\ndistributed_lock: all demonstrations passed")


if __name__ == "__main__":
    main()
