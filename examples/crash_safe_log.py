#!/usr/bin/env python3
"""The persistent log (§4.2.5): crash injection, recovery, corruption.

Demonstrates the full §4.2.5 story on the simulated pmem device:

1. the VerusSync crash-safety protocol verifies,
2. the executable log survives a random crash (committed appends recover),
3. CRC protection detects metadata corruption that the libpmemlog-style
   baseline silently accepts.

Run:  python examples/crash_safe_log.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.pmem import PmemCrash, PmemDevice       # noqa: E402
from repro.systems.plog.log import (LogCorruption,          # noqa: E402
                                    PmdkLikeLog, VerifiedLogLatest)
from repro.systems.plog.model import (                      # noqa: E402
    build_crash_safety_system)


def verify_protocol() -> None:
    print("== verifying the crash-safety protocol (VerusSync) ==")
    result = build_crash_safety_system().check()
    print(result.report())
    assert result.ok


def crash_and_recover() -> None:
    print("\n== crash injection and recovery ==")
    rng = random.Random(42)
    device = PmemDevice(1 << 15, seed=42)
    log = VerifiedLogLatest(device)
    committed = []
    device.schedule_crash(after_writes=25)
    try:
        while True:
            payload = bytes([rng.randrange(256)]) * rng.randrange(10, 200)
            offset = log.append(payload)
            committed.append((offset, payload))
    except PmemCrash:
        print(f"crash! {len(committed)} appends had returned")
    recovered = VerifiedLogLatest.recover(device)
    intact = 0
    for offset, payload in committed:
        if offset + len(payload) <= recovered.tail:
            assert recovered._read_circular(offset, len(payload)) == payload
            intact += 1
    print(f"recovery: tail={recovered.tail}, {intact} committed records "
          f"read back intact")


def corruption_detection() -> None:
    print("\n== CRC-protected metadata ==")
    device = PmemDevice(1 << 14)
    log = VerifiedLogLatest(device)
    log.append(b"important metadata")
    device.corrupt(offset=10, nbytes=2)  # media error in the header
    try:
        VerifiedLogLatest.recover(device)
        raise AssertionError("corruption went undetected!")
    except LogCorruption as err:
        print(f"verified log detects the media error: {err}")

    device2 = PmemDevice(1 << 14)
    baseline = PmdkLikeLog(device2)
    baseline.append(b"important metadata")
    device2.corrupt(offset=10, nbytes=2)
    PmdkLikeLog.recover(device2)
    print("libpmemlog-style baseline silently accepts the damaged header")


if __name__ == "__main__":
    verify_protocol()
    crash_and_recover()
    corruption_detection()
    print("\ncrash_safe_log: all demonstrations passed")
