#!/usr/bin/env python3
"""NR (§4.2.2, §3.4): ghost-checked node replication in action.

Shows VerusSync end-to-end: the cyclic-buffer protocol's inductive
invariants verify; the executable replicated structure then runs with
ghost tokens *dynamically enforcing* the same protocol — including
catching a deliberately misbehaving executor.

Run:  python examples/node_replication.py
"""

import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sync import ProtocolViolation                 # noqa: E402
from repro.systems.nr.log import NodeReplicated          # noqa: E402
from repro.systems.nr.model import build_nr_system       # noqa: E402
from repro.vc.wp import VcGen                            # noqa: E402


def verify_core_obligations() -> None:
    print("== verifying core VerusSync obligations ==")
    system = build_nr_system()
    mod = system.obligations_module()
    gen = VcGen(mod)
    for name in ("initialize#establishes",
                 "register_node#preserves_versions_bounded",
                 "register_node#fresh", "version_in_log#property"):
        result = gen.verify_function(mod.functions[name])
        status = "ok" if result.ok else "FAILED"
        print(f"  {status} {name}")
        assert result.ok


def run_replicated_structure() -> None:
    print("\n== concurrent ghost-checked execution ==")
    nr = NodeReplicated(num_replicas=3, ghost=True)
    errors = []

    def writer(replica_id: int) -> None:
        try:
            for j in range(40):
                nr.write(replica_id, ("set", f"key{replica_id}_{j}", j))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(r,)) for r in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    for r in range(3):
        nr.replicas[r].sync_up()
    states = [nr.replicas[r].ds.state for r in range(3)]
    assert all(s == states[0] for s in states)
    print(f"3 replicas converged on {len(states[0])} keys; every log step "
          f"was validated against the verified protocol")


def catch_protocol_violation() -> None:
    print("\n== a misbehaving executor is caught by the ghost tokens ==")
    nr = NodeReplicated(num_replicas=1, ghost=True)
    nr.write(0, ("set", "k", 1))
    replica = nr.replicas[0]
    instance = nr.log.instance
    try:
        # try to finish a read phase the executor never started
        instance.apply("reader_finish",
                       tokens={"executor": replica._exec_token,
                               "local_versions": replica._version_token},
                       node_id=0, start=0, end=99, cur=99)
        raise AssertionError("protocol violation went uncaught!")
    except ProtocolViolation as err:
        print(f"caught: {err}")


if __name__ == "__main__":
    verify_core_obligations()
    run_replicated_structure()
    catch_protocol_violation()
    print("\nnode_replication: all demonstrations passed")
