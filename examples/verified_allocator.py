#!/usr/bin/env python3
"""Verus-mimalloc (§4.2.4): ghost-accounted allocation.

Verifies the allocator's bit-trick lemmas and block-lifecycle protocol,
then runs the executable allocator with the ghost ledger on — showing the
non-aliasing guarantee in action, including a double-free and a
cross-thread free flowing through the atomic delayed list.

Run:  python examples/verified_allocator.py
"""

import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.systems.mimalloc.alloc import Allocator          # noqa: E402
from repro.systems.mimalloc.verified import (               # noqa: E402
    build_bit_tricks_module, build_disjointness_module,
    build_lifecycle_system)
from repro.vc.wp import VcGen                               # noqa: E402


def verify_facets() -> None:
    print("== verifying allocator lemmas ==")
    for name, build in [("bit tricks (by(bit_vector))",
                         build_bit_tricks_module),
                        ("block disjointness (by(nonlinear_arith))",
                         build_disjointness_module)]:
        result = VcGen(build()).verify_module()
        print(f"  {'ok' if result.ok else 'FAILED'}: {name}")
        assert result.ok
    lifecycle = build_lifecycle_system().check()
    print(f"  {'ok' if lifecycle.ok else 'FAILED'}: "
          f"block lifecycle protocol (VerusSync)")
    assert lifecycle.ok


def run_allocator() -> None:
    print("\n== ghost-accounted allocation ==")
    alloc = Allocator(ghost=True)
    blocks = [alloc.malloc(size) for size in (8, 100, 1000, 30000)]
    print(f"allocated 4 blocks: {[hex(b) for b in blocks]}")
    for b in blocks:
        alloc.free(b)
    print("freed all 4; the ghost ledger is empty:",
          not alloc.ghost.live)

    print("\n== double free is caught ==")
    p = alloc.malloc(64)
    alloc.free(p)
    try:
        alloc.free(p)
        raise AssertionError("double free went uncaught!")
    except AssertionError as err:
        if "uncaught" in str(err):
            raise
        print(f"caught: {err}")

    print("\n== cross-thread free through the atomic delayed list ==")
    block = alloc.malloc(128, thread_id=1)
    alloc.free(block, thread_id=2)          # lands on page.thread_free
    reused = {alloc.malloc(128, thread_id=1) for _ in range(64)}
    print("owner thread collected and reused the delayed block:",
          block in reused)


def worker_stress() -> None:
    print("\n== 4-thread stress with the ledger on ==")
    alloc = Allocator(ghost=True)
    errors = []

    def worker(tid: int) -> None:
        try:
            mine = []
            for i in range(400):
                if mine and i % 3 == 0:
                    alloc.free(mine.pop(), thread_id=tid)
                else:
                    mine.append(alloc.malloc(16 + (i % 200),
                                             thread_id=tid))
            for p in mine:
                alloc.free(p, thread_id=tid)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert not alloc.ghost.live
    print("1600 operations, zero aliasing violations, ledger empty")


if __name__ == "__main__":
    verify_facets()
    run_allocator()
    worker_stress()
    print("\nverified_allocator: all demonstrations passed")
