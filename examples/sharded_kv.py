#!/usr/bin/env python3
"""IronKV (§4.2.1): a sharded key-value store over the simulated network.

Spins up three hosts, stores data, delegates a key range from host 0 to
host 1 (data moves with it), and shows the verified delegation-map story:
the default-mode proof of `get` and the fully automatic EPR proof of the
map's invariants (§3.2 / Figure 3).

Run:  python examples/sharded_kv.py
"""

import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import Session                               # noqa: E402
from repro.epr import verify_epr_module                     # noqa: E402
from repro.runtime.network import Network                   # noqa: E402
from repro.systems.ironkv.delegation_map import (           # noqa: E402
    build_default_module)
from repro.systems.ironkv.delegation_map_epr import (       # noqa: E402
    build_epr_model)
from repro.systems.ironkv.host import VerusHost             # noqa: E402


def verify_delegation_map() -> None:
    print("== delegation map: default-mode proofs (get / splice) ==")
    result = Session().verify_module(build_default_module())
    print(result.report())
    assert result.ok
    print("\n== delegation map: EPR model — fully automatic (§3.2) ==")
    epr = verify_epr_module(build_epr_model())
    print(epr.report())
    assert epr.ok


def run_cluster() -> None:
    print("\n== running a 3-host cluster ==")
    net = Network()
    hosts = [VerusHost(i, net, default_host=0) for i in range(3)]
    servers = [threading.Thread(target=h.serve_forever, daemon=True)
               for h in hosts]
    for t in servers:
        t.start()
    client = net.endpoint("client")
    marshal = hosts[0].marshal

    def request(target, msg):
        client.send(f"host{target}", marshal(msg))
        reply = client.recv(timeout=2.0)
        assert reply is not None
        return hosts[0].parse(reply[1])

    for key in (10, 100, 900):
        request(0, ("Set", {"rid": key, "key": key,
                            "value": f"value-{key}".encode()}))
    print("stored 3 keys on host 0")

    hosts[0].delegate_range(50, 500, 1, [0, 1, 2])
    time.sleep(0.2)  # let the Delegate messages land
    owners = {k: hosts[2].dmap.get(k) for k in (10, 100, 900)}
    print(f"after delegating [50, 500) to host 1, host 2 routes: {owners}")
    assert owners[100] == 1 and owners[10] == 0

    variant, fields = request(1, ("Get", {"rid": 9999, "key": 100}))
    assert variant == "Reply" and fields["value"] == b"value-100"
    print("key 100 now served by host 1 with its data intact")

    for h in hosts:
        h.stop()


if __name__ == "__main__":
    verify_delegation_map()
    run_cluster()
    print("\nsharded_kv: all demonstrations passed")
