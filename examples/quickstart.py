#!/usr/bin/env python3
"""Quickstart: write a verified function and watch the verifier work.

This is the PyVerus analogue of the paper's Figure 2: a `pop`-like
operation specified against an abstract sequence, with pre/postconditions,
a deliberately broken variant to show error reporting, and a
`by(bit_vector)` assertion from §3.3.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import Session  # noqa: E402
from repro.lang import *  # noqa: E402

# One Session drives every demo below: the repro.api front door bundles
# parallelism, caching, diagnostics, and incremental solving in one
# config object (env overrides still apply via VerifyConfig.from_env()).
session = Session()


def verified_pop() -> None:
    """Figure 2's pop: remove and return the first element."""
    SeqI = SeqType(INT)
    mod = Module("quickstart")
    s = var("s", SeqI)
    Out = StructType("QsPop").declare([("value", INT), ("rest", SeqI)])
    mod.datatype(Out)

    exec_fn(mod, "pop", [("s", SeqI)], ret=("out", Out),
            requires=[s.length() > 0],
            ensures=[
                var("out", Out).field("value").eq(s.index(0)),
                ext_eq(var("out", Out).field("rest"), s.skip(1)),
            ],
            body=[
                let_("v", s.index(0)),
                ret(struct(Out, value=var("v", INT), rest=s.skip(1))),
            ])

    result = session.verify_module(mod)
    print(result.report())
    assert result.ok


def broken_pop_reports_errors() -> None:
    """Remove the precondition: the verifier localizes the failure."""
    SeqI = SeqType(INT)
    mod = Module("quickstart_broken")
    s = var("s", SeqI)
    exec_fn(mod, "pop_no_precondition", [("s", SeqI)], ret=("v", INT),
            body=[ret(s.index(0))])  # index may be out of bounds!
    result = session.verify_module(mod)
    print(result.report())
    assert not result.ok
    fn_name, obligation = result.first_failure()
    print(f"-> the verifier pinpointed: {obligation.label} "
          f"[{obligation.kind}]")


def bit_vector_assertion() -> None:
    """§3.3: prove a bit-manipulation fact with an isolated BV query."""
    mod = Module("quickstart_bv")
    x = var("x", U64)
    exec_fn(mod, "mask_is_mod", [("x", U64)],
            body=[assert_((x & lit(511)).eq(x % 512), by=BY_BIT_VECTOR)])
    result = session.verify_module(mod)
    print(result.report())
    assert result.ok


def loop_with_invariant() -> None:
    """A counting loop with an invariant and a termination measure."""
    mod = Module("quickstart_loop")
    n, i, total = var("n", U64), var("i", U64), var("total", U64)
    exec_fn(mod, "count_to", [("n", U64)], ret=("res", U64),
            ensures=[var("res", U64).eq(n)],
            body=[
                let_("i", lit(0, U64)),
                while_(i < n,
                       invariants=[i <= n],
                       body=[assign("i", i + 1)],
                       decreases=n - i),
                ret(i),
            ])
    result = session.verify_module(mod)
    print(result.report())
    assert result.ok


if __name__ == "__main__":
    print("== verified pop (Figure 2) ==")
    verified_pop()
    print("\n== broken pop: failure localization ==")
    broken_pop_reports_errors()
    print("\n== by(bit_vector) assertion (§3.3) ==")
    bit_vector_assertion()
    print("\n== loop with invariant ==")
    loop_with_invariant()
    print("\nquickstart: all demonstrations passed")
